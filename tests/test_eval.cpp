#include <gtest/gtest.h>

#include <cmath>

#include "dsl/eval.hpp"
#include "dsl/expr.hpp"

namespace abg::dsl {
namespace {

cca::Signals make_signals() {
  cca::Signals s;
  s.now = 12.0;
  s.mss = 1448.0;
  s.cwnd = 14480.0;        // 10 packets
  s.acked_bytes = 1448.0;  // one packet
  s.rtt = 0.08;
  s.srtt = 0.08;
  s.min_rtt = 0.05;
  s.max_rtt = 0.10;
  s.ack_rate = 181000.0;  // 125 pkts/s
  s.rtt_gradient = 0.01;
  s.time_since_loss = 2.0;
  s.cwnd_at_loss = 28960.0;
  return s;
}

TEST(Eval, SignalLeavesReadSnapshot) {
  const auto s = make_signals();
  EXPECT_DOUBLE_EQ(eval(*sig(Signal::kCwnd), s), 14480.0);
  EXPECT_DOUBLE_EQ(eval(*sig(Signal::kMss), s), 1448.0);
  EXPECT_DOUBLE_EQ(eval(*sig(Signal::kRtt), s), 0.08);
  EXPECT_DOUBLE_EQ(eval(*sig(Signal::kWMax), s), 28960.0);
  EXPECT_DOUBLE_EQ(eval(*sig(Signal::kTimeSinceLoss), s), 2.0);
}

TEST(Eval, RenoIncMacro) {
  const auto s = make_signals();
  EXPECT_NEAR(eval(*sig(Signal::kRenoInc), s), 1448.0 * 1448.0 / 14480.0, 1e-9);
}

TEST(Eval, VegasDiffMacro) {
  const auto s = make_signals();
  // (rtt - min_rtt) * ack_rate / mss = 0.03 * 181000 / 1448 = 3.75 packets.
  EXPECT_NEAR(eval(*sig(Signal::kVegasDiff), s), 3.75, 1e-9);
}

TEST(Eval, HtcpDiffMacro) {
  const auto s = make_signals();
  EXPECT_NEAR(eval(*sig(Signal::kHtcpDiff), s), 0.03 / 0.10, 1e-12);
}

TEST(Eval, RttsSinceLossMacro) {
  const auto s = make_signals();
  EXPECT_NEAR(eval(*sig(Signal::kRttsSinceLoss), s), 2.0 / 0.08, 1e-9);
}

TEST(Eval, MacrosAreTotalOnZeroSignals) {
  cca::Signals zero;
  zero.mss = 0;
  zero.cwnd = 0;
  zero.rtt = 0;
  zero.max_rtt = 0;
  for (auto m : {Signal::kRenoInc, Signal::kVegasDiff, Signal::kHtcpDiff,
                 Signal::kRttsSinceLoss}) {
    EXPECT_TRUE(std::isfinite(eval(*sig(m), zero)));
  }
}

TEST(Eval, Arithmetic) {
  const auto s = make_signals();
  EXPECT_DOUBLE_EQ(eval(*add(constant(2), constant(3)), s), 5.0);
  EXPECT_DOUBLE_EQ(eval(*sub(constant(2), constant(3)), s), -1.0);
  EXPECT_DOUBLE_EQ(eval(*mul(constant(2), constant(3)), s), 6.0);
  EXPECT_DOUBLE_EQ(eval(*div(constant(3), constant(2)), s), 1.5);
}

TEST(Eval, DivisionByZeroIsZero) {
  const auto s = make_signals();
  EXPECT_DOUBLE_EQ(eval(*div(constant(3), constant(0)), s), 0.0);
}

TEST(Eval, CubeAndCbrt) {
  const auto s = make_signals();
  EXPECT_DOUBLE_EQ(eval(*cube(constant(2)), s), 8.0);
  EXPECT_NEAR(eval(*cbrt(constant(27)), s), 3.0, 1e-12);
  EXPECT_NEAR(eval(*cbrt(constant(-8)), s), -2.0, 1e-12);  // negative cbrt ok
}

TEST(Eval, Comparisons) {
  const auto s = make_signals();
  EXPECT_TRUE(eval_bool(*lt(constant(1), constant(2)), s));
  EXPECT_FALSE(eval_bool(*lt(constant(2), constant(1)), s));
  EXPECT_TRUE(eval_bool(*gt(sig(Signal::kCwnd), sig(Signal::kMss)), s));
}

TEST(Eval, ConditionalPicksBranch) {
  const auto s = make_signals();
  auto e = cond(lt(sig(Signal::kRtt), constant(1.0)), constant(10), constant(20));
  EXPECT_DOUBLE_EQ(eval(*e, s), 10.0);
  auto e2 = cond(gt(sig(Signal::kRtt), constant(1.0)), constant(10), constant(20));
  EXPECT_DOUBLE_EQ(eval(*e2, s), 20.0);
}

TEST(Eval, ModEqExactMultiple) {
  const auto s = make_signals();
  EXPECT_TRUE(eval_bool(*mod_eq(constant(16), constant(8)), s));
  EXPECT_FALSE(eval_bool(*mod_eq(constant(12), constant(8)), s));
}

TEST(Eval, ModEqToleranceBand) {
  const auto s = make_signals();
  // Within 5% of a multiple counts as "= 0" over continuous signals.
  EXPECT_TRUE(eval_bool(*mod_eq(constant(16.3), constant(8)), s));
  EXPECT_TRUE(eval_bool(*mod_eq(constant(15.7), constant(8)), s));
  EXPECT_FALSE(eval_bool(*mod_eq(constant(12.0), constant(8)), s));
}

TEST(Eval, ModEqZeroDivisorIsFalse) {
  const auto s = make_signals();
  EXPECT_FALSE(eval_bool(*mod_eq(sig(Signal::kCwnd), constant(0)), s));
}

TEST(Eval, BoolAsNumberIsIndicator) {
  const auto s = make_signals();
  EXPECT_DOUBLE_EQ(eval(*lt(constant(1), constant(2)), s), 1.0);
  EXPECT_DOUBLE_EQ(eval(*lt(constant(2), constant(1)), s), 0.0);
}

TEST(Eval, HoleEvaluatesDefensivelyToOne) {
  const auto s = make_signals();
  EXPECT_DOUBLE_EQ(eval(*hole(0), s), 1.0);
}

TEST(Eval, RenoHandlerMatchesClosedForm) {
  const auto s = make_signals();
  auto handler = add(sig(Signal::kCwnd), mul(constant(0.7), sig(Signal::kRenoInc)));
  EXPECT_NEAR(eval(*handler, s), 14480.0 + 0.7 * 144.8, 1e-9);
}

}  // namespace
}  // namespace abg::dsl
