#include <gtest/gtest.h>

#include "dsl/dsl.hpp"
#include "dsl/known_handlers.hpp"

namespace abg::dsl {
namespace {

TEST(Dsl, CuratedDslsResolveByName) {
  for (const auto& name : curated_dsl_names()) {
    const Dsl d = dsl_by_name(name);
    EXPECT_EQ(d.name, name);
    EXPECT_FALSE(d.signals.empty());
    EXPECT_FALSE(d.ops.empty());
    EXPECT_FALSE(d.constant_pool.empty());
  }
  EXPECT_THROW(dsl_by_name("bogus"), std::invalid_argument);
}

TEST(Dsl, RenoDslHasBaseElementsOnly) {
  const Dsl d = reno_dsl();
  EXPECT_TRUE(d.has_signal(Signal::kRenoInc));
  EXPECT_FALSE(d.has_signal(Signal::kRtt));
  EXPECT_FALSE(d.has_signal(Signal::kVegasDiff));
  EXPECT_FALSE(d.has_op(Op::kCube));
}

TEST(Dsl, CubicDslAddsCubeAndWmax) {
  const Dsl d = cubic_dsl();
  EXPECT_TRUE(d.has_op(Op::kCube));
  EXPECT_TRUE(d.has_op(Op::kCbrt));
  EXPECT_TRUE(d.has_signal(Signal::kWMax));
}

TEST(Dsl, RateDelayDslAddsDelaySignals) {
  const Dsl d = rate_delay_dsl();
  for (auto s : {Signal::kRtt, Signal::kMinRtt, Signal::kMaxRtt, Signal::kAckRate,
                 Signal::kRttGradient, Signal::kHtcpDiff, Signal::kRttsSinceLoss}) {
    EXPECT_TRUE(d.has_signal(s));
  }
  EXPECT_FALSE(d.has_signal(Signal::kVegasDiff));
}

TEST(Dsl, VegasDslAddsVegasDiff) {
  EXPECT_TRUE(vegas_dsl().has_signal(Signal::kVegasDiff));
}

TEST(Dsl, SizeBoundedVariants) {
  EXPECT_EQ(delay7_dsl().max_nodes, 7);
  EXPECT_EQ(delay11_dsl().max_nodes, 11);
  EXPECT_EQ(vegas11_dsl().max_nodes, 11);
  EXPECT_EQ(vegas11_dsl().max_depth, 5);
}

TEST(Dsl, ElementCountMatchesListing) {
  // Base Reno-DSL: 5 signals + constant + 8 operators.
  EXPECT_EQ(reno_dsl().element_count(), 14u);
}

TEST(Dsl, SketchSpaceGrowsExponentiallyWithDepth) {
  const Dsl d = reno_dsl();
  const double s2 = sketch_space_size(d, 2);
  const double s3 = sketch_space_size(d, 3);
  const double s4 = sketch_space_size(d, 4);
  EXPECT_GT(s3, 100 * s2);
  EXPECT_GT(s4, 100 * s3);
}

TEST(Dsl, SketchSpaceAtDepthSevenIsAstronomical) {
  // §4.1: with the full Listing-1 DSL and depth 7, the space is ~10^150.
  Dsl full = vegas_dsl();
  full.ops.push_back(Op::kCube);
  full.ops.push_back(Op::kCbrt);
  const double s7 = sketch_space_size(full, 7);
  EXPECT_GT(s7, 1e100);
}

TEST(Dsl, DepthOneSpaceIsJustLeaves) {
  const Dsl d = reno_dsl();
  EXPECT_DOUBLE_EQ(sketch_space_size(d, 1),
                   static_cast<double>(d.signals.size()) + 1.0);
}

TEST(Dsl, WithinDslChecksSignalsOpsAndBounds) {
  const Dsl d = reno_dsl();
  auto ok = add(sig(Signal::kCwnd), mul(hole(0), sig(Signal::kRenoInc)));
  EXPECT_TRUE(within_dsl(*ok, d));
  auto wrong_signal = add(sig(Signal::kCwnd), sig(Signal::kRtt));
  EXPECT_FALSE(within_dsl(*wrong_signal, d));
  auto wrong_op = cube(sig(Signal::kCwnd));
  EXPECT_FALSE(within_dsl(*wrong_op, d));
}

TEST(Dsl, WithinDslEnforcesDepth) {
  Dsl d = reno_dsl();
  d.max_depth = 2;
  auto deep = add(sig(Signal::kCwnd), mul(hole(0), sig(Signal::kRenoInc)));
  EXPECT_FALSE(within_dsl(*deep, d));
}

TEST(KnownHandlers, AllCcasHaveEntries) {
  for (const auto& name :
       {"bbr", "reno", "westwood", "scalable", "lp", "hybla", "htcp", "illinois", "vegas",
        "veno", "nv", "yeah", "cubic", "bic", "cdg", "highspeed"}) {
    EXPECT_NO_THROW(known_handlers(name)) << name;
  }
  EXPECT_THROW(known_handlers("nope"), std::invalid_argument);
}

TEST(KnownHandlers, FineTunedExpressionsExistForTableTwoRows) {
  // The 13 kernel CCAs of Table 2 have fine-tuned handlers; BIC/CDG/HighSpeed
  // do not (out of scope, §5.5).
  int with = 0, without = 0;
  for (const auto& k : all_known_handlers()) {
    if (k.cca.rfind("student", 0) == 0) continue;
    (k.fine_tuned ? with : without)++;
  }
  EXPECT_EQ(with, 13);
  EXPECT_EQ(without, 3);
}

TEST(KnownHandlers, ExpectedSynthesizedAreConcrete) {
  for (const auto& k : all_known_handlers()) {
    if (!k.expected_synthesized) continue;
    EXPECT_EQ(hole_count(*k.expected_synthesized), 0) << k.cca;
  }
}

TEST(KnownHandlers, DslHintsAreCurated) {
  const auto names = curated_dsl_names();
  for (const auto& k : all_known_handlers()) {
    EXPECT_NE(std::find(names.begin(), names.end(), k.dsl_hint), names.end()) << k.cca;
  }
}

TEST(KnownHandlers, RenoFineTunedIsRenoIncrement) {
  // Tuned to this repo's ground-truth Reno (coefficient 1.0; the paper's
  // kernel traces gave 0.7).
  EXPECT_EQ(to_string(*known_handlers("reno").fine_tuned), "cwnd + reno-inc");
}

TEST(KnownHandlers, FineTunedWithinTheirFamilyDslSignals) {
  // Every fine-tuned handler only uses signals available in its hinted DSL.
  for (const auto& k : all_known_handlers()) {
    if (!k.fine_tuned) continue;
    const Dsl d = dsl_by_name(k.dsl_hint);
    for (Signal s : signals_used(*k.fine_tuned)) {
      EXPECT_TRUE(d.has_signal(s)) << k.cca << " uses " << signal_name(s);
    }
  }
}

}  // namespace
}  // namespace abg::dsl
