// Status-surface tests (ISSUE 5): the Prometheus text exposition is checked
// with a strict line-level mini-parser (family naming, one TYPE per family,
// cumulative buckets, _sum/_count consistency, label escaping), and the
// embedded StatusServer is exercised end to end over real loopback sockets.
// Also covers the rate-limited logging predicates behind ABG_WARN_EVERY_N /
// ABG_WARN_ONCE.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.hpp"
#include "obs/prometheus.hpp"
#include "obs/registry.hpp"
#include "obs/status_server.hpp"
#include "util/log.hpp"

namespace abg {
namespace {

// ---------------------------------------------------------------------------
// Prometheus exposition mini-parser. Splits the text into TYPE declarations
// and samples, enforcing the structural rules a real scraper relies on.
// ---------------------------------------------------------------------------

struct PromSample {
  std::string family;                          // metric name incl. _bucket etc.
  std::map<std::string, std::string> labels;   // unescaped values
  std::string value;                           // raw value text
};

struct PromDoc {
  std::map<std::string, std::string> types;  // family -> counter|gauge|histogram
  std::vector<PromSample> samples;
  std::vector<std::string> errors;
};

bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  return !(s[0] >= '0' && s[0] <= '9');
}

// Parse `name{k="v",...} value` (labels optional). Returns false on any
// syntax error, with a reason in *err.
bool parse_sample(const std::string& line, PromSample* out, std::string* err) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out->family = line.substr(0, i);
  if (!valid_name(out->family)) {
    *err = "bad metric name in: " + line;
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = line.find('=', i);
      if (eq == std::string::npos || eq + 1 >= line.size() || line[eq + 1] != '"') {
        *err = "bad label syntax in: " + line;
        return false;
      }
      const std::string key = line.substr(i, eq - i);
      if (!valid_name(key)) {
        *err = "bad label name '" + key + "' in: " + line;
        return false;
      }
      std::string value;
      std::size_t j = eq + 2;
      for (; j < line.size() && line[j] != '"'; ++j) {
        if (line[j] == '\\') {
          if (j + 1 >= line.size()) {
            *err = "dangling escape in: " + line;
            return false;
          }
          ++j;
          if (line[j] == 'n') {
            value += '\n';
          } else if (line[j] == '\\' || line[j] == '"') {
            value += line[j];
          } else {
            *err = "bad escape in: " + line;
            return false;
          }
        } else {
          value += line[j];
        }
      }
      if (j >= line.size()) {
        *err = "unterminated label value in: " + line;
        return false;
      }
      out->labels[key] = value;
      i = j + 1;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      *err = "unterminated label block in: " + line;
      return false;
    }
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    *err = "missing value in: " + line;
    return false;
  }
  out->value = line.substr(i + 1);
  if (out->value.empty() || out->value.find(' ') != std::string::npos) {
    *err = "bad value in: " + line;
    return false;
  }
  return true;
}

PromDoc parse_prometheus(const std::string& text) {
  PromDoc doc;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream tl(line.substr(7));
      std::string family;
      std::string type;
      tl >> family >> type;
      if (!valid_name(family) || (type != "counter" && type != "gauge" && type != "histogram")) {
        doc.errors.push_back("bad TYPE line: " + line);
        continue;
      }
      if (doc.types.count(family) != 0) {
        doc.errors.push_back("duplicate TYPE for " + family);
      }
      doc.types[family] = type;
      continue;
    }
    if (line[0] == '#') continue;  // other comments are legal
    PromSample s;
    std::string err;
    if (!parse_sample(line, &s, &err)) {
      doc.errors.push_back(err);
      continue;
    }
    doc.samples.push_back(std::move(s));
  }
  return doc;
}

// Strip a histogram-sample suffix to recover the declared family name.
std::string base_family(const std::string& family) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string suf(suffix);
    if (family.size() > suf.size() &&
        family.compare(family.size() - suf.size(), suf.size(), suf) == 0) {
      const std::string base = family.substr(0, family.size() - suf.size());
      return base;
    }
  }
  return family;
}

TEST(PrometheusText, SnapshotRendersStructurallyValidExposition) {
  obs::Snapshot s;
  s.counters.push_back({"synth.iterations", {{"cca", "reno"}, {"job", "reno"}}, 12});
  s.counters.push_back({"synth.iterations", {{"cca", "cubic"}, {"job", "cubic"}}, 7});
  s.counters.push_back({"distance.dtw_evals", {}, 42});
  s.gauges.push_back({"pool.queue_depth", {}, 3.0, 9.0});
  s.histograms.push_back({"phase.seconds",
                          {{"job", "reno"}},
                          {0.5, 1.0, 2.0},
                          {4, 2, 1, 3},  // last = overflow bucket
                          10,
                          8.25,
                          0.1,
                          5.0});

  const std::string text = obs::prometheus_text(s);
  const PromDoc doc = parse_prometheus(text);
  ASSERT_TRUE(doc.errors.empty()) << doc.errors.front() << "\n" << text;

  // Every family is declared, abg_-prefixed, and every sample's base family
  // has a TYPE line.
  for (const auto& [family, type] : doc.types) {
    EXPECT_EQ(family.rfind("abg_", 0), 0u) << family;
    (void)type;
  }
  for (const auto& sample : doc.samples) {
    EXPECT_TRUE(doc.types.count(base_family(sample.family)) != 0)
        << "sample without TYPE: " << sample.family;
  }
  EXPECT_EQ(doc.types.at("abg_synth_iterations"), "counter");
  EXPECT_EQ(doc.types.at("abg_pool_queue_depth"), "gauge");
  EXPECT_EQ(doc.types.at("abg_pool_queue_depth_max"), "gauge");
  EXPECT_EQ(doc.types.at("abg_phase_seconds"), "histogram");

  // Labeled counter series stay distinct and keep their label values.
  int iteration_series = 0;
  for (const auto& sample : doc.samples) {
    if (sample.family != "abg_synth_iterations") continue;
    ++iteration_series;
    ASSERT_TRUE(sample.labels.count("job"));
    if (sample.labels.at("job") == "reno") {
      EXPECT_EQ(sample.value, "12");
    }
    if (sample.labels.at("job") == "cubic") {
      EXPECT_EQ(sample.value, "7");
    }
  }
  EXPECT_EQ(iteration_series, 2);

  // Gauge renders as two families: last value and the _max high-watermark.
  for (const auto& sample : doc.samples) {
    if (sample.family == "abg_pool_queue_depth") {
      EXPECT_EQ(sample.value, "3");
    }
    if (sample.family == "abg_pool_queue_depth_max") {
      EXPECT_EQ(sample.value, "9");
    }
  }

  // Histogram: buckets are cumulative, +Inf bucket == _count, and _sum
  // matches the snapshot.
  std::vector<std::pair<std::string, std::string>> buckets;  // (le, value)
  std::string sum;
  std::string count;
  for (const auto& sample : doc.samples) {
    if (sample.family == "abg_phase_seconds_bucket") {
      ASSERT_TRUE(sample.labels.count("le"));
      EXPECT_EQ(sample.labels.at("job"), "reno");
      buckets.emplace_back(sample.labels.at("le"), sample.value);
    }
    if (sample.family == "abg_phase_seconds_sum") sum = sample.value;
    if (sample.family == "abg_phase_seconds_count") count = sample.value;
  }
  ASSERT_EQ(buckets.size(), 4u);  // 3 edges + +Inf
  EXPECT_EQ(buckets[0], (std::pair<std::string, std::string>{"0.5", "4"}));
  EXPECT_EQ(buckets[1], (std::pair<std::string, std::string>{"1", "6"}));
  EXPECT_EQ(buckets[2], (std::pair<std::string, std::string>{"2", "7"}));
  EXPECT_EQ(buckets[3].first, "+Inf");
  EXPECT_EQ(buckets[3].second, "10");
  EXPECT_EQ(count, "10");
  EXPECT_EQ(sum, "8.25");
}

TEST(PrometheusText, DottedNamesAndLabelValuesAreEscaped) {
  obs::Snapshot s;
  s.counters.push_back({"a.b-c", {{"job", "x\"y\\z\nw"}}, 1});
  const std::string text = obs::prometheus_text(s);
  const PromDoc doc = parse_prometheus(text);
  ASSERT_TRUE(doc.errors.empty()) << doc.errors.front() << "\n" << text;
  ASSERT_EQ(doc.samples.size(), 1u);
  EXPECT_EQ(doc.samples[0].family, "abg_a_b_c");  // '.' and '-' both mangled
  // The parser unescapes, so a round-trip recovers the original value.
  EXPECT_EQ(doc.samples[0].labels.at("job"), "x\"y\\z\nw");
}

TEST(PrometheusText, PostMangleFamilyCollisionsAreDisambiguated) {
  obs::Snapshot s;
  // "a.b" and "a_b" both mangle to abg_a_b; "g.m"'s synthesized _max family
  // collides with the explicitly registered gauge "g.m_max". Both cases must
  // render without duplicate TYPE lines (the parser flags those).
  s.counters.push_back({"a.b", {}, 1});
  s.counters.push_back({"a_b", {}, 2});
  s.gauges.push_back({"g.m", {}, 2.0, 3.0});
  s.gauges.push_back({"g.m_max", {}, 4.0, 5.0});

  const std::string text = obs::prometheus_text(s);
  const PromDoc doc = parse_prometheus(text);
  ASSERT_TRUE(doc.errors.empty()) << doc.errors.front() << "\n" << text;

  // The first claimant keeps the mangled family; the collider is suffixed.
  // Both values survive under distinct declared families.
  std::map<std::string, std::string> counter_values;  // family -> value
  for (const auto& sample : doc.samples) {
    if (sample.family.rfind("abg_a_b", 0) == 0) counter_values[sample.family] = sample.value;
  }
  ASSERT_EQ(counter_values.size(), 2u);
  ASSERT_TRUE(counter_values.count("abg_a_b"));
  EXPECT_EQ(counter_values.at("abg_a_b"), "1");
  for (const auto& [family, value] : counter_values) {
    if (family != "abg_a_b") {
      EXPECT_EQ(value, "2");
    }
  }
}

TEST(PrometheusText, HelpLinesPrecedeTypeAndEscape) {
  obs::Snapshot s;
  s.counters.push_back({"helped.counter", {}, 3});
  s.counters.push_back({"silent.counter", {}, 4});
  s.gauges.push_back({"helped.gauge", {}, 1.0, 2.0});
  s.help["helped.counter"] = "path\\to glory\nsecond line";
  s.help["helped.gauge"] = "queue depth";

  const std::string text = obs::prometheus_text(s);
  const PromDoc doc = parse_prometheus(text);
  ASSERT_TRUE(doc.errors.empty()) << doc.errors.front() << "\n" << text;

  // HELP text is escaped per exposition format 0.0.4 (backslash and newline;
  // quotes stay literal) and sits immediately above the family's TYPE line.
  const std::string counter_header =
      "# HELP abg_helped_counter path\\\\to glory\\nsecond line\n"
      "# TYPE abg_helped_counter counter\n";
  EXPECT_NE(text.find(counter_header), std::string::npos) << text;
  const std::string gauge_header =
      "# HELP abg_helped_gauge queue depth\n"
      "# TYPE abg_helped_gauge gauge\n";
  EXPECT_NE(text.find(gauge_header), std::string::npos) << text;

  // The synthesized _max mirror has no registration of its own, so it must
  // not inherit the base gauge's help; undescribed families get no HELP.
  EXPECT_EQ(text.find("# HELP abg_helped_gauge_max"), std::string::npos) << text;
  EXPECT_EQ(text.find("# HELP abg_silent_counter"), std::string::npos) << text;
}

TEST(PrometheusText, DescribeFlowsFromLiveRegistry) {
  obs::reset_all();
  obs::describe("status_test.described", "events observed by the status test");
  obs::counter("status_test.described").add(1);
  const std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("# HELP abg_status_test_described "
                      "events observed by the status test\n"
                      "# TYPE abg_status_test_described counter\n"),
            std::string::npos)
      << text;
  // snapshot() eagerly registers (and describes) the overflow counter so an
  // exact gate like `--require obs.series_overflow=0` can always bind.
  EXPECT_NE(text.find("# HELP abg_obs_series_overflow "), std::string::npos) << text;
}

TEST(PrometheusText, LiveRegistryEndToEnd) {
  obs::reset_all();
  obs::counter("status_test.events", {{"job", "alpha"}}).add(5);
  obs::gauge("status_test.depth").set(2.5);
  const PromDoc doc = parse_prometheus(obs::prometheus_text());
  ASSERT_TRUE(doc.errors.empty()) << doc.errors.front();
  bool saw_counter = false;
  for (const auto& sample : doc.samples) {
    if (sample.family == "abg_status_test_events" && sample.labels.count("job") &&
        sample.labels.at("job") == "alpha") {
      saw_counter = true;
      EXPECT_EQ(sample.value, "5");
    }
  }
  EXPECT_TRUE(saw_counter);
  obs::reset_all();
}

// ---------------------------------------------------------------------------
// StatusServer end-to-end over loopback.
// ---------------------------------------------------------------------------

// Minimal HTTP client: one request, read to EOF (the server always closes).
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t p = response.find("\r\n\r\n");
  return p == std::string::npos ? std::string() : response.substr(p + 4);
}

TEST(StatusServerTest, ServesHealthMetricsAndCustomRoutes) {
  obs::reset_all();
  obs::counter("status_server.hits").add(3);

  obs::StatusServer server;
  server.handle("/jobs", "application/json",
                [] { return std::string("{\"jobs\":[{\"name\":\"reno\"}]}"); });
  std::string err;
  ASSERT_TRUE(server.start(0, &err)) << err;  // port 0: ephemeral
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("Connection: close"), std::string::npos);
  EXPECT_EQ(body_of(health), "ok\n");

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  const PromDoc doc = parse_prometheus(body_of(metrics));
  EXPECT_TRUE(doc.errors.empty()) << (doc.errors.empty() ? "" : doc.errors.front());
  EXPECT_TRUE(doc.types.count("abg_status_server_hits"));

  // A query string must not defeat route matching.
  const std::string jobs = http_get(server.port(), "/jobs?pretty=1");
  EXPECT_NE(jobs.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(jobs.find("Content-Type: application/json"), std::string::npos);
  EXPECT_TRUE(JsonChecker(body_of(jobs)).valid()) << body_of(jobs);
  EXPECT_EQ(body_of(jobs), "{\"jobs\":[{\"name\":\"reno\"}]}");

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos);

  const std::string post =
      http_request(server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  obs::reset_all();
}

TEST(StatusServerTest, StopIsIdempotentAndRestartable) {
  obs::StatusServer server;
  std::string err;
  ASSERT_TRUE(server.start(0, &err)) << err;
  EXPECT_FALSE(server.start(0, &err));  // double start refused
  const std::uint16_t first_port = server.port();
  EXPECT_EQ(body_of(http_get(first_port, "/healthz")), "ok\n");
  server.stop();
  server.stop();  // idempotent
  ASSERT_TRUE(server.start(0, &err)) << err;
  EXPECT_EQ(body_of(http_get(server.port(), "/healthz")), "ok\n");
  server.stop();
}

TEST(StatusServerTest, ServesConcurrentPollers) {
  obs::StatusServer server;
  std::atomic<int> calls{0};
  server.handle("/poll", "text/plain", [&calls] {
    calls.fetch_add(1, std::memory_order_relaxed);
    return std::string("pong\n");
  });
  std::string err;
  ASSERT_TRUE(server.start(0, &err)) << err;
  // The server handles connections sequentially; concurrent clients queue in
  // the accept backlog and must all still get a complete response.
  std::vector<std::thread> clients;
  std::atomic<int> good{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([port = server.port(), &good] {
      if (body_of(http_get(port, "/poll")) == "pong\n") {
        good.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(good.load(), 8);
  EXPECT_EQ(calls.load(), 8);
  server.stop();
}

// ---------------------------------------------------------------------------
// Rich routes + request hardening (ISSUE 8): method dispatch with bodies,
// 405 + Allow on known paths, 413 on oversized bodies.
// ---------------------------------------------------------------------------

TEST(StatusServerTest, RichRoutesDispatchByMethodAndPrefix) {
  obs::StatusServer server;
  server.route("POST", "/jobs", [](const obs::HttpRequest& req) {
    obs::HttpResponse r = obs::HttpResponse::json(
        202, "{\"echo\":\"" + req.body + "\",\"client\":\"" +
                 req.header("x-abg-client") + "\"}");
    return r;
  });
  server.route("GET", "/jobs", [](const obs::HttpRequest& req) {
    return obs::HttpResponse::text(200, "path=" + req.path +
                                            " q=" + req.query_param("verbose"));
  });
  std::string err;
  ASSERT_TRUE(server.start(0, &err)) << err;

  // POST with a body and a client header reaches the handler intact.
  const std::string post = http_request(
      server.port(),
      "POST /jobs HTTP/1.1\r\nHost: x\r\nX-Abg-Client: tester\r\n"
      "Content-Length: 5\r\n\r\nhello");
  EXPECT_NE(post.find("HTTP/1.1 202 Accepted"), std::string::npos) << post;
  EXPECT_EQ(body_of(post), "{\"echo\":\"hello\",\"client\":\"tester\"}");

  // Prefix matching covers subpaths; query params parse.
  const std::string sub = http_get(server.port(), "/jobs/j-3/result?verbose=1");
  EXPECT_EQ(body_of(sub), "path=/jobs/j-3/result q=1");

  // A known path with an unsupported method earns 405 naming the supported
  // ones, not a 404.
  const std::string put =
      http_request(server.port(), "PUT /jobs HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(put.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos) << put;
  EXPECT_NE(put.find("Allow: GET, POST"), std::string::npos) << put;

  server.stop();
}

TEST(StatusServerTest, LegacyRoutesAdvertiseGetInAllowHeader) {
  obs::StatusServer server;
  std::string err;
  ASSERT_TRUE(server.start(0, &err)) << err;
  const std::string del =
      http_request(server.port(), "DELETE /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(del.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos) << del;
  EXPECT_NE(del.find("Allow: GET"), std::string::npos) << del;
  server.stop();
}

TEST(StatusServerTest, OversizedBodiesEarn413BeforeBeingRead) {
  obs::StatusServer server;
  server.set_max_body_bytes(64);
  bool handler_ran = false;
  server.route("POST", "/jobs", [&handler_ran](const obs::HttpRequest&) {
    handler_ran = true;
    return obs::HttpResponse::text(200, "ok");
  });
  std::string err;
  ASSERT_TRUE(server.start(0, &err)) << err;

  // Declared oversized: shed on the Content-Length header alone. The body is
  // deliberately NOT sent — a correct server answers without waiting for it.
  const std::string big = http_request(
      server.port(),
      "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 100000\r\n\r\n");
  EXPECT_NE(big.find("HTTP/1.1 413 Payload Too Large"), std::string::npos) << big;
  EXPECT_FALSE(handler_ran);

  // At the bound is fine.
  const std::string body(64, 'x');
  const std::string fits = http_request(
      server.port(), "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 64\r\n\r\n" + body);
  EXPECT_NE(fits.find("HTTP/1.1 200 OK"), std::string::npos) << fits;
  EXPECT_TRUE(handler_ran);
  server.stop();
}

TEST(StatusServerTest, ChunkedTransferEncodingIsRejectedNotMisparsed) {
  obs::StatusServer server;
  server.route("POST", "/jobs",
               [](const obs::HttpRequest&) { return obs::HttpResponse::text(200, "ok"); });
  std::string err;
  ASSERT_TRUE(server.start(0, &err)) << err;
  const std::string resp = http_request(
      server.port(),
      "POST /jobs HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 501"), std::string::npos) << resp;
  server.stop();
}

// ---------------------------------------------------------------------------
// Rate-limited logging predicates (ABG_WARN_EVERY_N / ABG_WARN_ONCE).
// ---------------------------------------------------------------------------

TEST(RateLimitedLog, EveryNPassesFirstThenEveryNth) {
  std::atomic<std::uint64_t> site{0};
  std::vector<int> logged;
  for (int i = 1; i <= 10; ++i) {
    if (util::detail::should_log_every_n(site, 3)) logged.push_back(i);
  }
  EXPECT_EQ(logged, (std::vector<int>{1, 4, 7, 10}));
}

TEST(RateLimitedLog, EveryNWithNOneAlwaysPasses) {
  std::atomic<std::uint64_t> site{0};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(util::detail::should_log_every_n(site, 1));
  }
}

TEST(RateLimitedLog, EveryNIsPerSiteNotGlobal) {
  std::atomic<std::uint64_t> site_a{0};
  std::atomic<std::uint64_t> site_b{0};
  EXPECT_TRUE(util::detail::should_log_every_n(site_a, 100));
  // A different site's counter is untouched by site_a's calls.
  EXPECT_FALSE(util::detail::should_log_every_n(site_a, 100));
  EXPECT_TRUE(util::detail::should_log_every_n(site_b, 100));
}

TEST(RateLimitedLog, OncePerKeyIsProcessWide) {
  EXPECT_TRUE(util::detail::should_log_once("test_status.key_a"));
  EXPECT_FALSE(util::detail::should_log_once("test_status.key_a"));
  EXPECT_TRUE(util::detail::should_log_once("test_status.key_b"));
  EXPECT_FALSE(util::detail::should_log_once("test_status.key_b"));
  EXPECT_FALSE(util::detail::should_log_once("test_status.key_a"));
}

TEST(RateLimitedLog, MacrosCompileAndRespectTheLimiter) {
  // Silence output: the predicates still run with logging off, so this
  // exercises the macro plumbing without spamming stderr.
  const util::LogLevel prev = util::log_level();
  util::set_log_level(util::LogLevel::kOff);
  for (int i = 0; i < 100; ++i) {
    ABG_WARN_EVERY_N(10, "suppressed %d", i);
    ABG_WARN_ONCE("test_status.macro_key", "suppressed once %d", i);
  }
  util::set_log_level(prev);
}

}  // namespace
}  // namespace abg
