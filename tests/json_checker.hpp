// Strict JSON validity checker shared by the observability tests
// (test_obs.cpp, test_spans.cpp, test_status.cpp). Small recursive-descent
// parser covering the full JSON grammar; used to prove the exporters emit
// well-formed documents without pulling in a JSON dependency. Validation
// only — for structural inspection the tests use util::parse_json.
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace abg {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  bool eat(char c) {
    if (eof() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (!eof() && peek() != '"') {
      if (peek() == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = peek();
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || std::isxdigit(static_cast<unsigned char>(peek())) == 0) return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(peek()) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    return eat('"');
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace abg
