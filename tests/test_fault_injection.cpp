// Chaos tests (ISSUE 3): drive the pipeline under injected I/O failures,
// NaN corruption, forced cancellation, and deadlines, and assert that every
// degradation path surfaces as a tagged Status / partial result — never a
// crash, a hang, or a silently wrong answer. Also the checkpoint/resume
// golden test: an interrupted-and-resumed run must be bit-identical to an
// uninterrupted one.
//
// These live in their own executable (abg_tests_chaos) so CI can run them
// with ABG_FAULT_INJECT set without perturbing the deterministic suites.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>

#include "dsl/known_handlers.hpp"
#include "net/simulator.hpp"
#include "obs/registry.hpp"
#include "synth/checkpoint.hpp"
#include "synth/refinement.hpp"
#include "synth/replay.hpp"
#include "trace/trace_io.hpp"
#include "util/cancellation.hpp"
#include "util/fault_injection.hpp"
#include "util/status.hpp"

namespace abg::synth {
namespace {

using util::StatusCode;

// Every test restores a clean injector so ordering cannot leak faults into
// a later test (set_config overrides ABG_FAULT_INJECT for this process).
struct FaultGuard {
  explicit FaultGuard(const util::fault::Config& cfg) { util::fault::set_config(cfg); }
  ~FaultGuard() { util::fault::set_config({}); }
};

std::vector<trace::Segment> reno_segments() {
  static const auto segments = [] {
    trace::Environment env;
    env.bandwidth_bps = 10e6;
    env.rtt_s = 0.04;
    env.duration_s = 10.0;
    env.seed = 21;
    auto t = net::run_connection("reno", env);
    return trace::segment_all({trace::trim_warmup(t, 2.0)}, 20);
  }();
  return segments;
}

SynthesisOptions quick_opts() {
  SynthesisOptions o;
  o.initial_samples = 6;
  o.initial_keep = 3;
  o.initial_segments = 2;
  o.concretize_budget = 12;
  o.max_iterations = 3;
  o.exhaustive_cap = 60;
  o.max_depth = 3;
  o.max_nodes = 5;
  o.max_holes = 2;
  o.threads = 2;
  o.seed = 5;
  return o;
}

trace::Trace small_trace() {
  trace::Trace t;
  t.cca_name = "test";
  for (int i = 0; i < 30; ++i) {
    trace::AckSample s;
    s.sig.now = 0.01 * i;
    s.sig.mss = 1448.0;
    s.sig.cwnd = 1448.0 * (10 + i);
    s.sig.acked_bytes = 1448.0;
    s.sig.rtt = 0.05;
    s.cwnd_after = s.sig.cwnd + 1448.0;
    t.samples.push_back(s);
  }
  return t;
}

TEST(FaultInjection, ParsesSpec) {
  auto cfg = util::fault::parse_spec("io=0.25, nan=0.5, cancel_after=3, seed=9, bogus=1");
  EXPECT_DOUBLE_EQ(cfg.io_fail_prob, 0.25);
  EXPECT_DOUBLE_EQ(cfg.nan_prob, 0.5);
  EXPECT_EQ(cfg.cancel_after_iterations, 3);
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_TRUE(cfg.any());
  EXPECT_FALSE(util::fault::parse_spec("").any());
}

TEST(FaultInjection, IoFaultSurfacesAsIoError) {
  util::fault::Config cfg;
  cfg.io_fail_prob = 1.0;  // deterministic: every I/O call fails
  FaultGuard guard(cfg);
  const auto injected_before = obs::counter("fault.io_injected").value();
  const std::string path = testing::TempDir() + "/abg_chaos_io.csv";
  auto st = trace::save_csv(small_trace(), path);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  auto loaded = trace::load_csv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_GE(obs::counter("fault.io_injected").value(), injected_before + 2);
}

TEST(FaultInjection, NanCorruptionNeverEscapesReplay) {
  util::fault::Config cfg;
  cfg.nan_prob = 0.2;
  cfg.seed = 3;
  FaultGuard guard(cfg);
  auto segs = reno_segments();
  ASSERT_FALSE(segs.empty());
  const auto held_before = obs::counter("synth.nonfinite_cwnd").value();
  const auto& handler = *dsl::known_handlers("reno").fine_tuned;
  for (const auto& seg : segs) {
    for (double v : replay(handler, seg)) EXPECT_TRUE(std::isfinite(v));
  }
  // With 20% corruption over whole segments, some injections must have fired
  // and each one must have been absorbed by the hold-previous-cwnd guard.
  EXPECT_GT(obs::counter("fault.nan_injected").value(), 0u);
  EXPECT_GT(obs::counter("synth.nonfinite_cwnd").value(), held_before);
}

TEST(FaultInjection, ForcedCancelYieldsPartialResult) {
  util::fault::Config cfg;
  cfg.cancel_after_iterations = 1;
  FaultGuard guard(cfg);
  auto result = synthesize(dsl::reno_dsl(), reno_segments(), quick_opts());
  EXPECT_TRUE(result.partial);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(result.best.valid());  // best-so-far, not nothing
  EXPECT_GE(result.iterations.size(), 1u);
}

TEST(Cancellation, ExternalTokenPreempts) {
  util::CancellationToken tok;
  tok.cancel();  // worst case: cancelled before the search even starts
  SynthesisOptions opts = quick_opts();
  opts.cancel = &tok;
  auto result = synthesize(dsl::reno_dsl(), reno_segments(), opts);
  EXPECT_TRUE(result.partial);
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  // The first iteration still runs to completion so the caller gets a
  // usable best-so-far (same contract as an expired deadline).
  EXPECT_TRUE(result.best.valid());
}

TEST(Cancellation, DeadlinePreemptsWithinBudget) {
  // A configuration that would run for minutes uninterrupted.
  SynthesisOptions opts;
  opts.initial_samples = 32;
  opts.concretize_budget = 48;
  opts.max_depth = 4;
  opts.max_nodes = 9;
  opts.max_holes = 3;
  opts.threads = 2;
  opts.seed = 5;
  opts.timeout_s = 2.0;
  const auto start = std::chrono::steady_clock::now();
  auto result = synthesize(dsl::reno_dsl(), reno_segments(), opts);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_TRUE(result.timed_out);
  EXPECT_TRUE(result.partial);
  EXPECT_EQ(result.status.code(), StatusCode::kTimeout);
  EXPECT_TRUE(result.best.valid());
  // The watchdog + per-candidate polling must land well inside 1.2x the
  // deadline (plus slack for the in-flight candidate on a loaded machine).
  EXPECT_LT(elapsed, opts.timeout_s * 1.2 + 0.75);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  Checkpoint ck;
  ck.pool_fingerprint = 0xdeadbeefcafef00dull;
  ck.seed = 42;
  ck.next_iter = 3;
  ck.n = 384;
  ck.k = 1;
  ck.best = {1.25e-3, "cwnd + c0 * reno-inc", "cwnd + 0.5 * reno-inc"};
  ck.sampler_rng = {{1, 2, 3, 4}, true, -0.75};
  ck.sampler_selected = {4, 0, 7};
  ck.live = {2};
  BucketCheckpoint b;
  b.label = "{+,*}";
  b.sketches = 17;
  b.handlers_scored = 204;
  b.exhausted = true;
  b.rng = {{9, 8, 7, 6}, false, 0.0};
  b.best_distance = 0.5;
  b.best_sketch = "cwnd + c0";
  b.best_handler = "cwnd + 1";
  ck.buckets.push_back(b);
  ck.candidates.push_back({2.0, "cwnd * c0", "cwnd * 2"});
  IterationReport rep;
  rep.n_target = 48;
  rep.keep = 2;
  rep.segments_used = 4;
  rep.seconds = 0.125;
  BucketReport br;
  br.label = "{+,*}";
  br.score = 0.5;
  br.sketches_enumerated = 17;
  br.handlers_scored = 204;
  br.exhausted = true;
  br.retained = true;
  rep.buckets.push_back(br);
  ck.iterations.push_back(rep);

  const std::string path = testing::TempDir() + "/abg_chaos_ckpt.txt";
  ASSERT_TRUE(save_checkpoint(ck, path).is_ok());
  auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->pool_fingerprint, ck.pool_fingerprint);
  EXPECT_EQ(loaded->seed, 42u);
  EXPECT_EQ(loaded->next_iter, 3);
  EXPECT_EQ(loaded->n, 384);
  EXPECT_EQ(loaded->k, 1);
  EXPECT_EQ(loaded->best.distance, 1.25e-3);  // bit-exact via hex floats
  EXPECT_EQ(loaded->best.handler, "cwnd + 0.5 * reno-inc");
  EXPECT_EQ(loaded->sampler_rng.s[3], 4u);
  EXPECT_TRUE(loaded->sampler_rng.have_cached_normal);
  EXPECT_EQ(loaded->sampler_rng.cached_normal, -0.75);
  EXPECT_EQ(loaded->sampler_selected, (std::vector<std::size_t>{4, 0, 7}));
  EXPECT_EQ(loaded->live, (std::vector<std::size_t>{2}));
  ASSERT_EQ(loaded->buckets.size(), 1u);
  EXPECT_EQ(loaded->buckets[0].label, "{+,*}");
  EXPECT_EQ(loaded->buckets[0].sketches, 17u);
  EXPECT_TRUE(loaded->buckets[0].exhausted);
  EXPECT_EQ(loaded->buckets[0].rng.s[0], 9u);
  ASSERT_EQ(loaded->candidates.size(), 1u);
  EXPECT_EQ(loaded->candidates[0].handler, "cwnd * 2");
  ASSERT_EQ(loaded->iterations.size(), 1u);
  EXPECT_EQ(loaded->iterations[0].n_target, 48);
  EXPECT_EQ(loaded->iterations[0].seconds, 0.125);
  ASSERT_EQ(loaded->iterations[0].buckets.size(), 1u);
  EXPECT_TRUE(loaded->iterations[0].buckets[0].retained);
}

TEST(Checkpoint, MissingFileIsIoErrorAndGarbageIsParseError) {
  auto missing = load_checkpoint(testing::TempDir() + "/abg_no_such_ckpt.txt");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);

  const std::string path = testing::TempDir() + "/abg_bad_ckpt.txt";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("abagnale-checkpoint v1\npool_fp not-a-number\n", f);
  std::fclose(f);
  auto bad = load_checkpoint(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
}

TEST(Checkpoint, ResumeIsBitIdenticalToUninterruptedRun) {
  auto segs = reno_segments();
  SynthesisOptions opts = quick_opts();
  const std::string ckpt = testing::TempDir() + "/abg_resume_ckpt.txt";
  std::remove(ckpt.c_str());

  // Run A: uninterrupted reference.
  auto a = synthesize(dsl::reno_dsl(), segs, opts);
  ASSERT_TRUE(a.best.valid());
  ASSERT_GE(a.iterations.size(), 2u) << "config too small to exercise resume";

  // Run B: checkpointing, killed by an injected cancel at iteration 1.
  {
    util::fault::Config cfg;
    cfg.cancel_after_iterations = 1;
    FaultGuard guard(cfg);
    SynthesisOptions bopts = opts;
    bopts.checkpoint_path = ckpt;
    auto b = synthesize(dsl::reno_dsl(), segs, bopts);
    EXPECT_TRUE(b.partial);
    EXPECT_LT(b.iterations.size(), a.iterations.size());
  }

  // Run C: resume from B's checkpoint, no faults.
  SynthesisOptions copts = opts;
  copts.checkpoint_path = ckpt;
  copts.resume = true;
  auto c = synthesize(dsl::reno_dsl(), segs, copts);
  ASSERT_TRUE(c.status.is_ok()) << c.status.to_string();
  ASSERT_TRUE(c.best.valid());

  // Bit-identical final state: winning handler, its distance, and the full
  // iteration-report history.
  EXPECT_EQ(dsl::to_string(*c.best.handler), dsl::to_string(*a.best.handler));
  EXPECT_EQ(c.best.distance, a.best.distance);
  ASSERT_EQ(c.iterations.size(), a.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    const auto& ia = a.iterations[i];
    const auto& ic = c.iterations[i];
    EXPECT_EQ(ic.n_target, ia.n_target);
    EXPECT_EQ(ic.keep, ia.keep);
    EXPECT_EQ(ic.segments_used, ia.segments_used);
    ASSERT_EQ(ic.buckets.size(), ia.buckets.size());
    for (std::size_t j = 0; j < ia.buckets.size(); ++j) {
      EXPECT_EQ(ic.buckets[j].label, ia.buckets[j].label);
      EXPECT_EQ(ic.buckets[j].score, ia.buckets[j].score);
      EXPECT_EQ(ic.buckets[j].sketches_enumerated, ia.buckets[j].sketches_enumerated);
      EXPECT_EQ(ic.buckets[j].retained, ia.buckets[j].retained);
    }
  }
}

TEST(Checkpoint, ResumeRejectsMismatchedSeed) {
  auto segs = reno_segments();
  const std::string ckpt = testing::TempDir() + "/abg_mismatch_ckpt.txt";
  std::remove(ckpt.c_str());
  {
    util::fault::Config cfg;
    cfg.cancel_after_iterations = 1;
    FaultGuard guard(cfg);
    SynthesisOptions opts = quick_opts();
    opts.checkpoint_path = ckpt;
    (void)synthesize(dsl::reno_dsl(), segs, opts);
  }
  SynthesisOptions opts = quick_opts();
  opts.checkpoint_path = ckpt;
  opts.resume = true;
  opts.seed = 6;  // different search, same checkpoint file
  auto result = synthesize(dsl::reno_dsl(), segs, opts);
  ASSERT_FALSE(result.status.is_ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidTrace);
  EXPECT_FALSE(result.best.valid());
}

TEST(Checkpoint, ResumeWithoutFileStartsFresh) {
  SynthesisOptions opts = quick_opts();
  opts.checkpoint_path = testing::TempDir() + "/abg_fresh_ckpt.txt";
  opts.resume = true;
  std::remove(opts.checkpoint_path.c_str());
  auto result = synthesize(dsl::reno_dsl(), reno_segments(), opts);
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_TRUE(result.best.valid());
  std::remove(opts.checkpoint_path.c_str());
}

// The CI chaos job runs this whole binary with ABG_FAULT_INJECT set; this
// test additionally stirs the probabilistic I/O and NaN faults through the
// end-to-end paths and accepts any outcome that is a clean tagged Status.
TEST(ChaosSmoke, PipelineSurvivesProbabilisticFaults) {
  util::fault::Config cfg = util::fault::config();
  if (!cfg.any()) {
    cfg = util::fault::parse_spec("io=0.1,nan=0.05,seed=13");
  }
  cfg.cancel_after_iterations = -1;  // cancel is covered deterministically above
  FaultGuard guard(cfg);

  const std::string path = testing::TempDir() + "/abg_chaos_smoke.csv";
  const auto t = small_trace();
  for (int round = 0; round < 20; ++round) {
    auto st = trace::save_csv(t, path);
    if (!st.is_ok()) {
      EXPECT_EQ(st.code(), StatusCode::kIoError);
      continue;
    }
    auto loaded = trace::load_csv(path);
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
      continue;
    }
    EXPECT_EQ(loaded->samples.size(), t.samples.size());
  }

  // Replay under NaN corruption must stay finite no matter what.
  const auto& handler = *dsl::known_handlers("reno").fine_tuned;
  for (const auto& seg : reno_segments()) {
    for (double v : replay(handler, seg)) EXPECT_TRUE(std::isfinite(v));
  }

  // A short synthesis must complete (or cancel cleanly) without crashing.
  auto result = synthesize(dsl::reno_dsl(), reno_segments(), quick_opts());
  EXPECT_TRUE(result.best.valid());
  if (!result.status.is_ok()) {
    EXPECT_TRUE(result.partial);
  }
}

}  // namespace
}  // namespace abg::synth
