#include <gtest/gtest.h>

#include <set>

#include "dsl/dsl.hpp"
#include "dsl/simplify.hpp"
#include "dsl/units.hpp"
#include "synth/buckets.hpp"
#include "synth/enumerator.hpp"

namespace abg::synth {
namespace {

EnumeratorOptions small_opts() {
  EnumeratorOptions o;
  o.max_depth = 2;
  o.max_nodes = 3;
  o.max_holes = 2;
  return o;
}

TEST(Enumerator, EmitsOnlyWellFormedNumSketches) {
  auto sketches = enumerate_all(dsl::reno_dsl(), small_opts(), 500);
  ASSERT_FALSE(sketches.empty());
  for (const auto& s : sketches) {
    EXPECT_TRUE(s->is_num()) << dsl::to_string(*s);
    EXPECT_LE(dsl::depth(*s), 2) << dsl::to_string(*s);
    EXPECT_LE(dsl::node_count(*s), 3) << dsl::to_string(*s);
  }
}

TEST(Enumerator, EmitsOnlyInDslSketches) {
  const auto d = dsl::reno_dsl();
  auto sketches = enumerate_all(d, small_opts(), 500);
  for (const auto& s : sketches) {
    for (auto sig : dsl::signals_used(*s)) EXPECT_TRUE(d.has_signal(sig));
    for (auto op : dsl::ops_used(*s)) EXPECT_TRUE(d.has_op(op));
  }
}

TEST(Enumerator, EmitsNoSimplifiableSketches) {
  auto sketches = enumerate_all(dsl::reno_dsl(), small_opts(), 500);
  for (const auto& s : sketches) {
    EXPECT_FALSE(dsl::is_simplifiable(*s)) << dsl::to_string(*s);
  }
}

TEST(Enumerator, EmitsNoDuplicatesUpToCommutativity) {
  auto sketches = enumerate_all(dsl::reno_dsl(), small_opts(), 500);
  std::set<std::size_t> hashes;
  for (const auto& s : sketches) {
    EXPECT_TRUE(hashes.insert(dsl::hash_expr(*dsl::canonicalize(s))).second)
        << dsl::to_string(*s);
  }
}

TEST(Enumerator, UnitCheckedSketchesPassLocalChecker) {
  auto sketches = enumerate_all(dsl::reno_dsl(), small_opts(), 300);
  for (const auto& s : sketches) {
    EXPECT_TRUE(dsl::unit_check(*s)) << dsl::to_string(*s);
  }
}

TEST(Enumerator, UnitCheckingPrunesTheSpace) {
  EnumeratorOptions with = small_opts();
  EnumeratorOptions without = small_opts();
  without.unit_check = false;
  const auto pruned = enumerate_all(dsl::reno_dsl(), with, 5000);
  const auto full = enumerate_all(dsl::reno_dsl(), without, 5000);
  EXPECT_LT(pruned.size(), full.size());
  // And some unit-violating sketch (e.g. time-since-loss alone) appears only
  // in the unchecked run.
  auto has_tsl_leaf = [](const std::vector<dsl::ExprPtr>& v) {
    for (const auto& s : v) {
      if (s->kind == dsl::Expr::Kind::kSignal &&
          s->signal == dsl::Signal::kTimeSinceLoss) {
        return true;
      }
    }
    return false;
  };
  EXPECT_FALSE(has_tsl_leaf(pruned));
  EXPECT_TRUE(has_tsl_leaf(full));
}

TEST(Enumerator, ExhaustsTinySpaces) {
  dsl::Dsl tiny = dsl::reno_dsl();
  tiny.signals = {dsl::Signal::kCwnd, dsl::Signal::kRenoInc};
  tiny.ops = {dsl::Op::kAdd};
  tiny.allow_constants = false;
  EnumeratorOptions o;
  o.max_depth = 2;
  o.max_nodes = 3;
  SketchEnumerator e(tiny, o);
  std::vector<std::string> all;
  while (auto s = e.next()) all.push_back(dsl::to_string(**s));
  EXPECT_TRUE(e.exhausted());
  // Exactly: cwnd, reno-inc, cwnd+reno-inc (x+x rejected, commutative dedup).
  std::set<std::string> got(all.begin(), all.end());
  EXPECT_EQ(got.size(), 3u) << ::testing::PrintToString(all);
  EXPECT_TRUE(got.count("cwnd"));
  EXPECT_TRUE(got.count("reno-inc"));
  EXPECT_TRUE(got.count("cwnd + reno-inc"));
}

TEST(Enumerator, MatchesReferenceEnumerationOnTinyDsl) {
  // Cross-check the SMT enumeration against a hand-rolled recursive
  // reference for a two-signal, two-op DSL at depth 2.
  dsl::Dsl tiny = dsl::reno_dsl();
  tiny.signals = {dsl::Signal::kCwnd, dsl::Signal::kMss};
  tiny.ops = {dsl::Op::kAdd, dsl::Op::kSub};
  tiny.allow_constants = false;
  EnumeratorOptions o;
  o.max_depth = 2;
  o.max_nodes = 3;
  auto got = enumerate_all(tiny, o, 1000);

  // Reference: leaves and all binary combinations that survive the filters.
  std::set<std::size_t> expected;
  std::vector<dsl::ExprPtr> leaves = {dsl::sig(dsl::Signal::kCwnd),
                                      dsl::sig(dsl::Signal::kMss)};
  for (const auto& l : leaves) expected.insert(dsl::hash_expr(*dsl::canonicalize(l)));
  for (const auto& a : leaves) {
    for (const auto& b : leaves) {
      for (auto op : {dsl::Op::kAdd, dsl::Op::kSub}) {
        auto e = dsl::node(op, {a, b});
        if (dsl::is_simplifiable(*e)) continue;
        if (!dsl::unit_check(*e)) continue;
        expected.insert(dsl::hash_expr(*dsl::canonicalize(e)));
      }
    }
  }
  std::set<std::size_t> got_hashes;
  for (const auto& s : got) got_hashes.insert(dsl::hash_expr(*dsl::canonicalize(s)));
  EXPECT_EQ(got_hashes, expected);
}

TEST(Enumerator, BucketConstraintForcesExactOpUsage) {
  EnumeratorOptions o;
  o.max_depth = 3;
  o.max_nodes = 5;
  o.bucket = std::vector<dsl::Op>{dsl::Op::kAdd, dsl::Op::kMul};
  auto sketches = enumerate_all(dsl::reno_dsl(), o, 200);
  ASSERT_FALSE(sketches.empty());
  for (const auto& s : sketches) {
    EXPECT_TRUE(same_ops(dsl::ops_used(*s), *o.bucket)) << dsl::to_string(*s);
  }
}

TEST(Enumerator, EmptyBucketYieldsLeafSketchesOnly) {
  EnumeratorOptions o;
  o.max_depth = 3;
  o.bucket = std::vector<dsl::Op>{};
  auto sketches = enumerate_all(dsl::reno_dsl(), o, 100);
  ASSERT_FALSE(sketches.empty());
  for (const auto& s : sketches) {
    EXPECT_NE(s->kind, dsl::Expr::Kind::kOp) << dsl::to_string(*s);
  }
}

TEST(Enumerator, BucketsPartitionTheSpace) {
  // The union of per-bucket enumerations equals the whole-space enumeration
  // (same DSL, same bounds), with no overlaps.
  dsl::Dsl tiny = dsl::reno_dsl();
  tiny.signals = {dsl::Signal::kCwnd, dsl::Signal::kRenoInc};
  tiny.ops = {dsl::Op::kAdd, dsl::Op::kMul};
  EnumeratorOptions o;
  o.max_depth = 2;
  o.max_nodes = 3;
  o.max_holes = 1;

  std::set<std::size_t> whole;
  for (const auto& s : enumerate_all(tiny, o, 10000)) {
    whole.insert(dsl::hash_expr(*dsl::canonicalize(s)));
  }
  std::set<std::size_t> unioned;
  std::size_t total = 0;
  for (const auto& b : make_buckets(tiny)) {
    EnumeratorOptions bo = o;
    bo.bucket = b.ops;
    const auto part = enumerate_all(tiny, bo, 10000);
    total += part.size();
    for (const auto& s : part) unioned.insert(dsl::hash_expr(*dsl::canonicalize(s)));
  }
  EXPECT_EQ(unioned, whole);
  EXPECT_EQ(total, whole.size());  // disjoint
}

TEST(Enumerator, HoleBudgetIsRespected) {
  EnumeratorOptions o;
  o.max_depth = 3;
  o.max_nodes = 7;
  o.max_holes = 1;
  auto sketches = enumerate_all(dsl::reno_dsl(), o, 300);
  for (const auto& s : sketches) {
    EXPECT_LE(dsl::hole_count(*s), 1) << dsl::to_string(*s);
  }
}

TEST(Enumerator, CountsModelsAndEmissions) {
  SketchEnumerator e(dsl::reno_dsl(), small_opts());
  for (int i = 0; i < 10; ++i) {
    if (!e.next()) break;
  }
  EXPECT_GE(e.models_enumerated(), e.sketches_emitted());
  EXPECT_EQ(e.sketches_emitted(), 10u);
}

}  // namespace
}  // namespace abg::synth
