// Span-layer tests (ISSUE 5): explicit context propagation, span/parent id
// chains, per-lane (Perfetto pid) attribution, and the work-stealing pool's
// enqueue-time context capture. The exported Chrome trace is inspected
// structurally with util::parse_json — not just validated — so the tests
// prove every span id resolves and every event lands on a registered lane.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.hpp"
#include "obs/span.hpp"
#include "obs/trace_events.hpp"
#include "util/json_parse.hpp"
#include "util/thread_pool.hpp"

namespace abg {
namespace {

struct ParsedEvent {
  std::string name;
  std::string ph;
  std::uint32_t pid = 0;
  std::uint64_t span = 0;    // 0 when the event has no span id
  std::uint64_t parent = 0;  // 0 = root
  std::string lane_name;     // metadata events only
};

// Parse trace_events_json() into a flat event list; fails the test on any
// structural surprise.
std::vector<ParsedEvent> parse_trace() {
  const std::string json = obs::trace_events_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  auto doc = util::parse_json(json);
  EXPECT_TRUE(doc.ok()) << doc.status().to_string();
  std::vector<ParsedEvent> out;
  const util::JsonValue* events = doc->find("traceEvents");
  if (events == nullptr) {
    ADD_FAILURE() << "no traceEvents array";
    return out;
  }
  for (const auto& e : events->items()) {
    ParsedEvent p;
    p.name = e.find("name") ? e.find("name")->as_string() : "";
    p.ph = e.find("ph") ? e.find("ph")->as_string() : "";
    p.pid = e.find("pid") ? static_cast<std::uint32_t>(e.find("pid")->as_int()) : 0;
    if (const util::JsonValue* args = e.find("args")) {
      if (const util::JsonValue* s = args->find("span")) {
        p.span = static_cast<std::uint64_t>(s->as_int());
      }
      if (const util::JsonValue* par = args->find("parent")) {
        p.parent = static_cast<std::uint64_t>(par->as_int());
      }
      if (p.ph == "M" && args->find("name")) {
        p.lane_name = args->find("name")->as_string();
      }
    }
    out.push_back(std::move(p));
  }
  return out;
}

class SpansTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::clear_trace_events();
    obs::set_tracing_enabled(true);
  }
  void TearDown() override {
    obs::set_tracing_enabled(false);
    obs::clear_trace_events();
  }
};

TEST_F(SpansTest, ContextScopeInstallsAndRestores) {
  const obs::SpanContext before = obs::current_context();
  {
    obs::ContextScope scope(obs::SpanContext{7, 42});
    EXPECT_EQ(obs::current_context().lane, 7u);
    EXPECT_EQ(obs::current_context().span, 42u);
    {
      obs::ContextScope nested(obs::SpanContext{9, 0});
      EXPECT_EQ(obs::current_context().lane, 9u);
    }
    EXPECT_EQ(obs::current_context().lane, 7u);
    EXPECT_EQ(obs::current_context().span, 42u);
  }
  EXPECT_EQ(obs::current_context().lane, before.lane);
  EXPECT_EQ(obs::current_context().span, before.span);
}

TEST_F(SpansTest, DisarmedSpanHasIdZeroAndRecordsNothing) {
  obs::set_tracing_enabled(false);
  obs::Span span("ignored", "test");
  EXPECT_EQ(span.id(), 0u);
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST_F(SpansTest, NestedSpansFormAParentChain) {
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    obs::Span outer("outer", "test");
    outer_id = outer.id();
    EXPECT_EQ(obs::current_context().span, outer_id);
    {
      obs::Span inner("inner", "test");
      inner_id = inner.id();
      EXPECT_NE(inner_id, outer_id);
      EXPECT_EQ(obs::current_context().span, inner_id);
    }
    EXPECT_EQ(obs::current_context().span, outer_id);
  }
  EXPECT_EQ(obs::current_context().span, 0u);

  std::map<std::string, ParsedEvent> by_name;
  for (const auto& e : parse_trace()) {
    if (e.ph == "X") by_name[e.name] = e;
  }
  ASSERT_TRUE(by_name.count("outer"));
  ASSERT_TRUE(by_name.count("inner"));
  EXPECT_EQ(by_name["outer"].span, outer_id);
  EXPECT_EQ(by_name["outer"].parent, 0u);
  EXPECT_EQ(by_name["inner"].span, inner_id);
  EXPECT_EQ(by_name["inner"].parent, outer_id);
  // No registered lanes: everything is on the default process lane (pid 1).
  EXPECT_EQ(by_name["outer"].pid, 1u);
  EXPECT_EQ(by_name["inner"].pid, 1u);
}

TEST_F(SpansTest, UserArgsSurviveTheIdMerge) {
  { obs::Span span("with_args", "test", "{\"iter\":3,\"n\":16}"); }
  const std::string json = obs::trace_events_json();
  EXPECT_NE(json.find("\"span\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"iter\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"n\":16"), std::string::npos) << json;
}

TEST_F(SpansTest, RegisteredLanesGetMetadataAndEventsCarryTheirPid) {
  const std::uint32_t lane_a = obs::register_lane("job reno");
  const std::uint32_t lane_b = obs::register_lane("job cubic");
  EXPECT_NE(lane_a, lane_b);
  EXPECT_GE(lane_a, 2u);  // pid 1 is the process lane
  {
    obs::ContextScope scope(obs::SpanContext{lane_a, 0});
    obs::Span span("work a", "test");
  }
  {
    obs::ContextScope scope(obs::SpanContext{lane_b, 0});
    obs::Span span("work b", "test");
  }
  { obs::Span span("work main", "test"); }

  std::map<std::string, std::uint32_t> lane_pids;  // metadata name -> pid
  std::map<std::string, ParsedEvent> by_name;
  for (const auto& e : parse_trace()) {
    if (e.ph == "M") lane_pids[e.lane_name] = e.pid;
    if (e.ph == "X") by_name[e.name] = e;
  }
  ASSERT_TRUE(lane_pids.count("abagnale"));
  ASSERT_TRUE(lane_pids.count("job reno"));
  ASSERT_TRUE(lane_pids.count("job cubic"));
  EXPECT_EQ(lane_pids["abagnale"], 1u);
  EXPECT_EQ(by_name.at("work a").pid, lane_pids["job reno"]);
  EXPECT_EQ(by_name.at("work b").pid, lane_pids["job cubic"]);
  EXPECT_EQ(by_name.at("work main").pid, 1u);
  EXPECT_EQ(by_name.at("work a").pid, lane_a);
  EXPECT_EQ(by_name.at("work b").pid, lane_b);
}

// Lane pids are monotonic across clear_trace_events(): a job still holding a
// pre-clear lane id keeps emitting on its own (now unnamed) lane instead of
// aliasing whatever lane gets registered next.
TEST_F(SpansTest, LanePidsAreNotReusedAcrossClear) {
  const std::uint32_t stale = obs::register_lane("job old");
  obs::clear_trace_events();
  const std::uint32_t fresh = obs::register_lane("job new");
  EXPECT_NE(stale, fresh);

  obs::trace_complete_event_on(stale, "stale work", "test", 0.0, 1.0);
  obs::trace_complete_event_on(fresh, "fresh work", "test", 0.0, 1.0);

  std::map<std::string, std::uint32_t> lane_pids;  // metadata name -> pid
  std::map<std::string, ParsedEvent> by_name;
  for (const auto& e : parse_trace()) {
    if (e.ph == "M") lane_pids[e.lane_name] = e.pid;
    if (e.ph == "X") by_name[e.name] = e;
  }
  ASSERT_TRUE(by_name.count("stale work"));
  ASSERT_TRUE(by_name.count("fresh work"));
  EXPECT_EQ(by_name["stale work"].pid, stale);
  EXPECT_EQ(by_name["fresh work"].pid, fresh);
  // The clear dropped the old lane's name; only the new lane is named, and
  // under its own pid.
  EXPECT_FALSE(lane_pids.count("job old"));
  ASSERT_TRUE(lane_pids.count("job new"));
  EXPECT_EQ(lane_pids["job new"], fresh);
}

// The core propagation guarantee: the pool captures the submitter's context
// at enqueue time and installs it in whichever worker runs the task, so
// stolen tasks attribute to the submitting job's lane — never to whatever
// the worker was doing before.
TEST_F(SpansTest, PoolTasksRunOnTheSubmittersLane) {
  util::ThreadPool pool(3);
  const std::uint32_t lane = obs::register_lane("job pool-test");
  std::uint64_t root_id = 0;
  {
    obs::ContextScope scope(obs::SpanContext{lane, 0});
    obs::Span root("job pool-test", "api");
    root_id = root.id();
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.submit([] { obs::Span span("task.work", "test"); }));
    }
    for (auto& f : futures) f.get();
  }

  std::map<std::uint64_t, ParsedEvent> by_span;
  std::vector<ParsedEvent> task_events;
  for (const auto& e : parse_trace()) {
    if (e.ph != "X") continue;
    if (e.span != 0) by_span[e.span] = e;
    if (e.name == "task.work") task_events.push_back(e);
  }
  ASSERT_EQ(task_events.size(), 16u);
  for (const auto& e : task_events) {
    EXPECT_EQ(e.pid, lane) << "task ran on the wrong lane";
    // Each task.work is enclosed by the worker's pool.task span, which in
    // turn parents to the submitting root span.
    ASSERT_TRUE(by_span.count(e.parent)) << "unresolvable parent id " << e.parent;
    const ParsedEvent& pool_span = by_span.at(e.parent);
    EXPECT_EQ(pool_span.name, "pool.task");
    EXPECT_EQ(pool_span.pid, lane);
    EXPECT_EQ(pool_span.parent, root_id);
  }
}

// Satellite (ISSUE 5): concurrent batch jobs — several threads, each with
// its own lane, emitting overlapping span trees through one shared pool.
// The export must stay well-formed, every span id must be unique, every
// parent id must resolve, and every event must sit on a registered lane.
TEST_F(SpansTest, ConcurrentLanesExportWellFormedResolvableTrace) {
  constexpr int kJobs = 4;
  constexpr int kSpansPerJob = 25;
  std::vector<std::uint32_t> lanes;
  for (int j = 0; j < kJobs; ++j) {
    lanes.push_back(obs::register_lane("job j" + std::to_string(j)));
  }
  std::vector<std::thread> threads;
  for (int j = 0; j < kJobs; ++j) {
    threads.emplace_back([lane = lanes[static_cast<std::size_t>(j)], j] {
      obs::ContextScope scope(obs::SpanContext{lane, 0});
      obs::Span root("job j" + std::to_string(j), "api");
      for (int i = 0; i < kSpansPerJob; ++i) {
        obs::Span iter("iter", "synth", "{\"i\":" + std::to_string(i) + "}");
        obs::Span inner("score", "synth");
        obs::trace_instant_event("mark", "synth");
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto events = parse_trace();
  std::set<std::uint32_t> known_pids{1};
  for (const auto& e : events) {
    if (e.ph == "M") known_pids.insert(e.pid);
  }
  std::set<std::uint64_t> span_ids;
  for (const auto& e : events) {
    if (e.ph == "M") continue;
    EXPECT_TRUE(known_pids.count(e.pid)) << "event on unregistered lane pid " << e.pid;
    if (e.ph == "X") {
      EXPECT_NE(e.span, 0u) << "complete event without a span id: " << e.name;
      EXPECT_TRUE(span_ids.insert(e.span).second) << "duplicate span id " << e.span;
    }
  }
  // Every parent id (except root 0) resolves to a recorded span.
  for (const auto& e : events) {
    if (e.ph == "X" && e.parent != 0) {
      EXPECT_TRUE(span_ids.count(e.parent)) << "dangling parent " << e.parent;
    }
  }
  // Each job's lane carries exactly its own spans: 1 root + 2 per iteration.
  for (int j = 0; j < kJobs; ++j) {
    const auto lane = lanes[static_cast<std::size_t>(j)];
    std::size_t n = 0;
    for (const auto& e : events) {
      if (e.ph == "X" && e.pid == lane) ++n;
    }
    EXPECT_EQ(n, 1u + 2u * kSpansPerJob);
  }
}

}  // namespace
}  // namespace abg
