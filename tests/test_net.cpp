#include <gtest/gtest.h>

#include "net/event_queue.hpp"
#include "net/link.hpp"
#include "net/receiver.hpp"
#include "net/signal_tracker.hpp"

namespace abg::net {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, BreaksTiesByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int ran = 0;
  q.schedule(1.0, [&] { ++ran; });
  q.schedule(5.0, [&] { ++ran; });
  q.run_until(2.0);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(0.1, recurse);
  };
  q.schedule(0.0, recurse);
  q.run_until(1.0);
  EXPECT_EQ(depth, 5);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  double seen = -1;
  q.schedule(1.0, [&] {
    q.schedule(0.5, [&] { seen = q.now(); });  // in the past
  });
  q.run_until(2.0);
  EXPECT_GE(seen, 1.0);
}

TEST(Link, AddsSerializationAndPropagationDelay) {
  util::Rng rng(1);
  Link link(8e6 /* 1 MB/s */, 0.01, 1e9);
  auto t = link.transmit(1000.0, 0.0, rng);
  ASSERT_TRUE(t.has_value());
  // 1000 bytes at 1 MB/s = 1 ms serialization + 10 ms propagation.
  EXPECT_NEAR(*t, 0.011, 1e-9);
}

TEST(Link, QueuesBackToBackPackets) {
  util::Rng rng(1);
  Link link(8e6, 0.0, 1e9);
  auto t1 = link.transmit(1000.0, 0.0, rng);
  auto t2 = link.transmit(1000.0, 0.0, rng);
  ASSERT_TRUE(t1 && t2);
  EXPECT_NEAR(*t2 - *t1, 0.001, 1e-9);  // second waits for the first
}

TEST(Link, DropsWhenBufferFull) {
  util::Rng rng(1);
  Link link(8e3 /* 1 KB/s: slow */, 0.0, 2000.0 /* 2 KB buffer */);
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    if (link.transmit(1000.0, 0.0, rng)) ++delivered;
  }
  EXPECT_LT(delivered, 10);
  EXPECT_GT(link.drops(), 0u);
  EXPECT_EQ(delivered + static_cast<int>(link.drops()), 10);
}

TEST(Link, BacklogDrainsOverTime) {
  util::Rng rng(1);
  Link link(8e6, 0.0, 1e9);
  link.transmit(1000.0, 0.0, rng);
  link.transmit(1000.0, 0.0, rng);
  EXPECT_GT(link.backlog_bytes(0.0), 0.0);
  EXPECT_DOUBLE_EQ(link.backlog_bytes(1.0), 0.0);
}

TEST(Link, RandomLossDropsApproximatelyAtRate) {
  util::Rng rng(99);
  Link link(1e12, 0.0, 1e12, 0.3);
  int dropped = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!link.transmit(100.0, static_cast<double>(i), rng)) ++dropped;
  }
  EXPECT_NEAR(dropped / 10000.0, 0.3, 0.03);
}

TEST(Receiver, AcksInOrderSegments) {
  Receiver r;
  EXPECT_EQ(r.on_segment(0), 1);
  EXPECT_EQ(r.on_segment(1), 2);
  EXPECT_EQ(r.on_segment(2), 3);
}

TEST(Receiver, DuplicateAcksOnGap) {
  Receiver r;
  r.on_segment(0);
  EXPECT_EQ(r.on_segment(2), 1);  // hole at 1 -> dup ACK
  EXPECT_EQ(r.on_segment(3), 1);
  EXPECT_EQ(r.on_segment(1), 4);  // hole filled -> cumulative jump
}

TEST(Receiver, IgnoresSpuriousRetransmit) {
  Receiver r;
  r.on_segment(0);
  r.on_segment(1);
  EXPECT_EQ(r.on_segment(0), 2);  // old segment re-ACKs frontier
}

TEST(Receiver, AbsorbsOutOfOrderBurst) {
  Receiver r;
  EXPECT_EQ(r.on_segment(3), 0);
  EXPECT_EQ(r.on_segment(2), 0);
  EXPECT_EQ(r.on_segment(1), 0);
  EXPECT_EQ(r.on_segment(0), 4);
}

TEST(SignalTracker, TracksMinMaxRtt) {
  SignalTracker t;
  t.on_rtt_sample(0.05, 1.0);
  t.on_rtt_sample(0.10, 2.0);
  t.on_rtt_sample(0.03, 3.0);
  cca::Signals sig;
  t.fill(sig, 3.0);
  EXPECT_DOUBLE_EQ(sig.min_rtt, 0.03);
  EXPECT_DOUBLE_EQ(sig.max_rtt, 0.10);
  EXPECT_DOUBLE_EQ(sig.rtt, 0.03);
}

TEST(SignalTracker, SrttIsEwma) {
  SignalTracker t;
  t.on_rtt_sample(0.08, 1.0);
  EXPECT_DOUBLE_EQ(t.srtt(), 0.08);  // first sample initializes
  t.on_rtt_sample(0.16, 2.0);
  EXPECT_NEAR(t.srtt(), 0.08 * 7.0 / 8.0 + 0.16 / 8.0, 1e-12);
}

TEST(SignalTracker, AckRateApproximatesDeliveryRate) {
  SignalTracker t;
  for (int i = 0; i < 200; ++i) {
    t.on_delivery(1000.0, i * 0.01);  // 1000 bytes per 10 ms = 100 KB/s
  }
  EXPECT_NEAR(t.ack_rate(), 100e3, 5e3);
}

TEST(SignalTracker, GradientPositiveWhenRttRises) {
  SignalTracker t;
  for (int i = 0; i < 50; ++i) t.on_rtt_sample(0.05 + i * 0.001, 1.0 + i * 0.01);
  cca::Signals sig;
  t.fill(sig, 2.0);
  EXPECT_GT(sig.rtt_gradient, 0.0);
}

TEST(SignalTracker, TimeSinceLossAndWmax) {
  SignalTracker t;
  t.on_loss(5.0, 123456.0);
  cca::Signals sig;
  t.fill(sig, 8.5);
  EXPECT_DOUBLE_EQ(sig.time_since_loss, 3.5);
  EXPECT_DOUBLE_EQ(sig.cwnd_at_loss, 123456.0);
}

}  // namespace
}  // namespace abg::net
