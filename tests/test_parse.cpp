#include <gtest/gtest.h>

#include "dsl/known_handlers.hpp"
#include "dsl/parse.hpp"

namespace abg::dsl {
namespace {

ExprPtr must_parse(const std::string& s) {
  auto r = parse(s);
  EXPECT_TRUE(r) << s << " -> " << r.error;
  return r.expr;
}

TEST(Parse, Leaves) {
  EXPECT_TRUE(equal(*must_parse("cwnd"), *sig(Signal::kCwnd)));
  EXPECT_TRUE(equal(*must_parse("reno-inc"), *sig(Signal::kRenoInc)));
  EXPECT_TRUE(equal(*must_parse("min-rtt"), *sig(Signal::kMinRtt)));
  EXPECT_TRUE(equal(*must_parse("42"), *constant(42)));
  EXPECT_TRUE(equal(*must_parse("-0.7"), *constant(-0.7)));
  EXPECT_TRUE(equal(*must_parse("c0"), *hole(0)));
  EXPECT_TRUE(equal(*must_parse("c12"), *hole(12)));
}

TEST(Parse, PrecedenceMulOverAdd) {
  auto e = must_parse("cwnd + 0.7 * reno-inc");
  auto expected = add(sig(Signal::kCwnd), mul(constant(0.7), sig(Signal::kRenoInc)));
  EXPECT_TRUE(equal(*e, *expected)) << to_string(*e);
}

TEST(Parse, LeftAssociativity) {
  auto e = must_parse("1 - 2 - 3");
  auto expected = sub(sub(constant(1), constant(2)), constant(3));
  EXPECT_TRUE(equal(*e, *expected));
}

TEST(Parse, ParenthesesOverride) {
  auto e = must_parse("(cwnd + mss) * 2");
  auto expected = mul(add(sig(Signal::kCwnd), sig(Signal::kMss)), constant(2));
  EXPECT_TRUE(equal(*e, *expected));
}

TEST(Parse, CubeAndCbrt) {
  EXPECT_TRUE(equal(*must_parse("time-since-loss^3"), *cube(sig(Signal::kTimeSinceLoss))));
  EXPECT_TRUE(equal(*must_parse("cbrt(wmax)"), *cbrt(sig(Signal::kWMax))));
  auto e = must_parse("(2 * rtt)^3");
  EXPECT_TRUE(equal(*e, *cube(mul(constant(2), sig(Signal::kRtt)))));
}

TEST(Parse, Conditionals) {
  auto e = must_parse("{vegas-diff < 1} ? reno-inc : 0");
  auto expected = cond(lt(sig(Signal::kVegasDiff), constant(1)), sig(Signal::kRenoInc),
                       constant(0));
  EXPECT_TRUE(equal(*e, *expected));
}

TEST(Parse, ModuloCondition) {
  auto e = must_parse("{rtts-since-loss % 8 = 0} ? 2.6 : 2.05");
  auto expected = cond(mod_eq(sig(Signal::kRttsSinceLoss), constant(8)), constant(2.6),
                       constant(2.05));
  EXPECT_TRUE(equal(*e, *expected));
}

TEST(Parse, SubtractionVsHyphenatedNames) {
  // "min-rtt" is one identifier; "min-rtt - rtt" is a subtraction.
  auto e = must_parse("min-rtt - rtt");
  EXPECT_TRUE(equal(*e, *sub(sig(Signal::kMinRtt), sig(Signal::kRtt))));
}

TEST(Parse, RoundTripsEveryKnownHandler) {
  for (const auto& k : all_known_handlers()) {
    for (const auto& h : {k.fine_tuned, k.expected_synthesized}) {
      if (!h) continue;
      const std::string printed = to_string(*h);
      auto r = parse(printed);
      ASSERT_TRUE(r) << k.cca << ": " << printed << " -> " << r.error;
      EXPECT_TRUE(equal(*r.expr, *h)) << k.cca << ": " << printed << " reparsed as "
                                      << to_string(*r.expr);
    }
  }
}

TEST(Parse, RoundTripsSketchesWithHoles) {
  auto sk = add(sig(Signal::kCwnd), mul(hole(0), sig(Signal::kRenoInc)));
  auto r = parse(to_string(*sk));
  ASSERT_TRUE(r);
  EXPECT_TRUE(equal(*r.expr, *sk));
}

TEST(Parse, RejectsGarbage) {
  EXPECT_FALSE(parse(""));
  EXPECT_FALSE(parse("cwnd +"));
  EXPECT_FALSE(parse("unknown-signal"));
  EXPECT_FALSE(parse("cwnd + (mss"));
  EXPECT_FALSE(parse("{cwnd} ? 1 : 2"));          // condition must compare
  EXPECT_FALSE(parse("{cwnd % 2 = 1} ? 1 : 2"));  // only "= 0" supported
  EXPECT_FALSE(parse("cwnd^2"));                  // only cube
  EXPECT_FALSE(parse("cwnd mss"));                // trailing input
}

TEST(Parse, ErrorsCarryDiagnostics) {
  auto r = parse("cwnd + (mss");
  ASSERT_FALSE(r);
  EXPECT_NE(r.error.find("')'"), std::string::npos);
}

}  // namespace
}  // namespace abg::dsl
