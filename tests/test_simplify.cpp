#include <gtest/gtest.h>

#include "dsl/simplify.hpp"

namespace abg::dsl {
namespace {

auto cwnd_s() { return sig(Signal::kCwnd); }
auto mss_s() { return sig(Signal::kMss); }
auto rtt_s() { return sig(Signal::kRtt); }

TEST(Simplify, LeavesAreNotSimplifiable) {
  EXPECT_FALSE(is_simplifiable(*cwnd_s()));
  EXPECT_FALSE(is_simplifiable(*hole(0)));
  EXPECT_FALSE(is_simplifiable(*constant(5.0)));
}

TEST(Simplify, XMinusXFolds) { EXPECT_TRUE(is_simplifiable(*sub(cwnd_s(), cwnd_s()))); }
TEST(Simplify, XPlusXFolds) { EXPECT_TRUE(is_simplifiable(*add(cwnd_s(), cwnd_s()))); }
TEST(Simplify, XOverXFolds) { EXPECT_TRUE(is_simplifiable(*div(cwnd_s(), cwnd_s()))); }

TEST(Simplify, ConstantOnlySubtreesFold) {
  EXPECT_TRUE(is_simplifiable(*add(hole(0), hole(1))));
  EXPECT_TRUE(is_simplifiable(*mul(constant(2), constant(3))));
  EXPECT_TRUE(is_simplifiable(*cube(hole(0))));
  EXPECT_TRUE(is_simplifiable(*mul(cwnd_s(), add(hole(0), hole(1)))));  // nested
}

TEST(Simplify, ChainCancellationAcrossNesting) {
  // (acked + reno-inc) - (acked - cwnd) == reno-inc + cwnd.
  auto e = sub(add(sig(Signal::kAckedBytes), sig(Signal::kRenoInc)),
               sub(sig(Signal::kAckedBytes), cwnd_s()));
  EXPECT_TRUE(is_simplifiable(*e));
}

TEST(Simplify, ChainWithTwoConstantsFolds) {
  // (reno-inc + c1) - (c2 - cwnd): the two constants merge.
  auto e = sub(add(sig(Signal::kRenoInc), hole(0)), sub(hole(1), cwnd_s()));
  EXPECT_TRUE(is_simplifiable(*e));
}

TEST(Simplify, DistinctChainTermsAreFine) {
  auto e = sub(add(cwnd_s(), mss_s()), rtt_s());
  EXPECT_FALSE(is_simplifiable(*e));
}

TEST(Simplify, RightLeaningAddChainRejected) {
  EXPECT_TRUE(is_simplifiable(*add(cwnd_s(), add(mss_s(), rtt_s()))));
  EXPECT_FALSE(is_simplifiable(*add(add(cwnd_s(), mss_s()), rtt_s())));
}

TEST(Simplify, RightLeaningMulChainRejected) {
  EXPECT_TRUE(is_simplifiable(*mul(cwnd_s(), mul(mss_s(), rtt_s()))));
  EXPECT_FALSE(is_simplifiable(*mul(mul(cwnd_s(), mss_s()), rtt_s())));
}

TEST(Simplify, NestedDivisionRejected) {
  EXPECT_TRUE(is_simplifiable(*div(div(cwnd_s(), mss_s()), rtt_s())));
  EXPECT_TRUE(is_simplifiable(*div(cwnd_s(), div(mss_s(), rtt_s()))));
}

TEST(Simplify, LeafOverConstantRejectedKeepMulForm) {
  EXPECT_TRUE(is_simplifiable(*div(cwnd_s(), hole(0))));
  // Compound numerator over a constant is kept (not fewer nodes as mul).
  EXPECT_FALSE(is_simplifiable(*div(add(cwnd_s(), mss_s()), hole(0))));
}

TEST(Simplify, IdenticalCondBranchesRejected) {
  auto c = lt(rtt_s(), hole(0));
  EXPECT_TRUE(is_simplifiable(*cond(c, cwnd_s(), cwnd_s())));
  EXPECT_FALSE(is_simplifiable(*cond(c, cwnd_s(), mss_s())));
}

TEST(Simplify, TrivialComparisonsRejected) {
  EXPECT_TRUE(is_simplifiable(*lt(cwnd_s(), cwnd_s())));
  EXPECT_TRUE(is_simplifiable(*gt(rtt_s(), rtt_s())));
  EXPECT_TRUE(is_simplifiable(*mod_eq(cwnd_s(), cwnd_s())));
}

TEST(Simplify, CubeCbrtInversesRejected) {
  EXPECT_TRUE(is_simplifiable(*cube(cbrt(cwnd_s()))));
  EXPECT_TRUE(is_simplifiable(*cbrt(cube(cwnd_s()))));
  EXPECT_FALSE(is_simplifiable(*cube(cwnd_s())));
}

TEST(Simplify, RecursesIntoChildren) {
  auto bad = add(cwnd_s(), mul(mss_s(), sub(rtt_s(), rtt_s())));
  EXPECT_TRUE(is_simplifiable(*bad));
}

TEST(Canonicalize, OrdersCommutativeOperands) {
  auto a = add(mss_s(), cwnd_s());
  auto b = add(cwnd_s(), mss_s());
  EXPECT_TRUE(equal(*canonicalize(a), *canonicalize(b)));
}

TEST(Canonicalize, LeavesNonCommutativeAlone) {
  auto a = sub(mss_s(), cwnd_s());
  auto c = canonicalize(a);
  EXPECT_EQ(to_string(*c), "mss - cwnd");
}

TEST(Canonicalize, RecursesThroughTree) {
  auto a = mul(add(rtt_s(), mss_s()), cwnd_s());
  auto b = mul(cwnd_s(), add(mss_s(), rtt_s()));
  EXPECT_TRUE(equal(*canonicalize(a), *canonicalize(b)));
}

TEST(Compare, IsATotalOrder) {
  std::vector<ExprPtr> exprs = {cwnd_s(), mss_s(), hole(0), constant(1.0),
                                add(cwnd_s(), mss_s()), mul(cwnd_s(), mss_s())};
  for (const auto& a : exprs) {
    EXPECT_EQ(compare(*a, *a), 0);
    for (const auto& b : exprs) {
      EXPECT_EQ(compare(*a, *b), -compare(*b, *a));
    }
  }
}

}  // namespace
}  // namespace abg::dsl
