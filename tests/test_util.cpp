#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/csv.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace abg::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(9, 9), 9);
}

TEST(Rng, NormalHasRoughMoments) {
  Rng r(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(1.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ChanceExtremes) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ExponentialPositiveWithRoughMean) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(2.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng r(19);
  auto idx = r.sample_indices(10, 5);
  ASSERT_EQ(idx.size(), 5u);
  std::set<std::size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 5u);
  for (auto i : idx) EXPECT_LT(i, 10u);
}

TEST(Rng, SampleIndicesCapsAtN) {
  Rng r(19);
  EXPECT_EQ(r.sample_indices(3, 10).size(), 3u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesExceptionsThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Csv, RoundTripsSimpleRows) {
  CsvWriter w;
  w.add_row({"a", "b", "c"});
  w.add_row({"1", "2", "3"});
  auto rows = parse_csv(w.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Csv, QuotesFieldsWithSeparators) {
  CsvWriter w;
  w.add_row({"x,y", "plain", "has\"quote"});
  auto rows = parse_csv(w.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "x,y");
  EXPECT_EQ(rows[0][2], "has\"quote");
}

TEST(Csv, NumericRowsRoundTripPrecisely) {
  CsvWriter w;
  w.add_row_numeric({1.0 / 3.0, 1e-9, 123456789.123});
  auto rows = parse_csv(w.str());
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_NEAR(std::stod(rows[0][0]), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(std::stod(rows[0][1]), 1e-9, 1e-18);
}

TEST(Csv, ParsesCrlf) {
  auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 1.0);
}

// --- util::Retry under a deterministic clock (ISSUE 8 satellite) ------------

TEST(Retry, SucceedsWithoutSleepingWhenFirstAttemptPasses) {
  std::vector<double> sleeps;
  RetryPolicy policy;
  policy.max_attempts = 5;
  Retry retry(policy, [&](double s) { sleeps.push_back(s); });
  int calls = 0;
  const Status st = retry.run([&] {
    ++calls;
    return Status::ok();
  });
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(Retry, BackoffScheduleIsExponentialCappedAndDeterministic) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_s = 0.1;
  policy.multiplier = 2.0;
  policy.max_backoff_s = 0.5;
  policy.jitter_frac = 0.0;  // exact schedule
  std::vector<double> sleeps;
  Retry retry(policy, [&](double s) { sleeps.push_back(s); });
  int calls = 0;
  const Status st = retry.run([&] {
    ++calls;
    return Status(StatusCode::kIoError, "transient");
  });
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 6);
  // 0.1, 0.2, 0.4, then capped at 0.5 — one delay per retry (5 of them).
  ASSERT_EQ(sleeps.size(), 5u);
  EXPECT_DOUBLE_EQ(sleeps[0], 0.1);
  EXPECT_DOUBLE_EQ(sleeps[1], 0.2);
  EXPECT_DOUBLE_EQ(sleeps[2], 0.4);
  EXPECT_DOUBLE_EQ(sleeps[3], 0.5);
  EXPECT_DOUBLE_EQ(sleeps[4], 0.5);
  // Exhaustion is reported in the message so operators see the budget.
  EXPECT_NE(st.message().find("after 6 attempts"), std::string::npos);
}

TEST(Retry, JitterStaysWithinConfiguredBandAndIsSeeded) {
  RetryPolicy policy;
  policy.initial_backoff_s = 1.0;
  policy.multiplier = 1.0;
  policy.max_backoff_s = 10.0;
  policy.jitter_frac = 0.25;
  policy.seed = 99;
  Retry a(policy), b(policy);
  for (int attempt = 1; attempt <= 20; ++attempt) {
    const double da = a.backoff_s(attempt);
    EXPECT_GE(da, 0.75);
    EXPECT_LE(da, 1.25);
    // Same seed => same jitter stream (deterministic schedules in tests).
    EXPECT_DOUBLE_EQ(da, b.backoff_s(attempt));
  }
}

TEST(Retry, NonRetryableCodeFailsImmediately) {
  std::vector<double> sleeps;
  RetryPolicy policy;
  policy.max_attempts = 5;
  Retry retry(policy, [&](double s) { sleeps.push_back(s); });
  int calls = 0;
  const Status st = retry.run([&] {
    ++calls;
    return Status(StatusCode::kInvalidArgument, "permanent");
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
  // No "after N attempts" context: the retry loop never engaged.
  EXPECT_EQ(st.message(), "permanent");
}

TEST(Retry, RecoversWhenALaterAttemptSucceeds) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter_frac = 0.0;
  Retry retry(policy, [](double) {});
  int calls = 0;
  const Status st = retry.run([&] {
    return ++calls < 3 ? Status(StatusCode::kIoError, "flaky") : Status::ok();
  });
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(calls, 3);
}

}  // namespace
}  // namespace abg::util
