// Classifier and full-pipeline integration tests (small environments to
// keep the suite quick; the paper-scale runs are in bench/).
#include <gtest/gtest.h>

#include <cmath>

#include "classify/classifier.hpp"
#include "core/abagnale.hpp"
#include "net/simulator.hpp"

namespace abg {
namespace {

std::vector<trace::Environment> tiny_envs(std::uint64_t seed) {
  auto envs = net::default_environments(2, seed);
  for (auto& e : envs) e.duration_s = 8.0;
  return envs;
}

classify::ClassifierOptions tiny_classifier_opts() {
  classify::ClassifierOptions o;
  o.known_ccas = {"reno", "cubic", "vegas", "bbr", "scalable"};
  o.environments = tiny_envs(501);
  return o;
}

TEST(Classifier, IdentifiesItsOwnReferences) {
  classify::Classifier c(tiny_classifier_opts());
  for (const auto& name : {"reno", "vegas", "bbr"}) {
    // Same environments, different seeds than the references.
    auto envs = tiny_envs(733);
    auto traces = net::collect_traces(name, envs);
    auto result = c.classify(traces);
    EXPECT_EQ(result.label, name);
    ASSERT_FALSE(result.closest.empty());
    EXPECT_EQ(result.closest.front(), name);
  }
}

TEST(Classifier, StudentCcaIsUnknownWithClosestHints) {
  classify::ClassifierOptions opts = tiny_classifier_opts();
  opts.unknown_threshold = 8.0;  // strict, as for genuinely novel CCAs
  classify::Classifier c(opts);
  auto traces = net::collect_traces("student6", tiny_envs(733));
  auto result = c.classify(traces);
  EXPECT_TRUE(result.is_unknown());
  EXPECT_EQ(result.closest.size(), opts.known_ccas.size());
}

TEST(Classifier, PerConnectionVotesAreRecorded) {
  classify::Classifier c(tiny_classifier_opts());
  auto traces = net::collect_traces("reno", tiny_envs(733));
  auto result = c.classify(traces);
  ASSERT_EQ(result.per_connection.size(), traces.size());
  for (const auto& m : result.per_connection) {
    EXPECT_FALSE(m.cca.empty());
    EXPECT_GE(m.distance, 0.0);
  }
}

TEST(DslSelection, KnownLabelUsesFamilyDsl) {
  classify::Classification c;
  c.label = "reno";
  EXPECT_EQ(core::dsl_for_classification(c), "reno");
  c.label = "vegas";
  EXPECT_EQ(core::dsl_for_classification(c), "vegas");
  c.label = "cubic";
  EXPECT_EQ(core::dsl_for_classification(c), "cubic");
  c.label = "bbr";
  EXPECT_EQ(core::dsl_for_classification(c), "bbr");
}

TEST(DslSelection, UnknownFallsBackToClosestHint) {
  classify::Classification c;
  c.label = "unknown";
  c.closest = {"veno", "reno"};
  EXPECT_EQ(core::dsl_for_classification(c), "vegas");  // veno's family
}

TEST(DslSelection, NoHintsDefaultToVegas) {
  classify::Classification c;
  c.label = "unknown";
  EXPECT_EQ(core::dsl_for_classification(c), "vegas");
}

core::PipelineOptions tiny_pipeline_opts() {
  core::PipelineOptions o;
  o.classifier = tiny_classifier_opts();
  o.synth.initial_samples = 6;
  o.synth.initial_keep = 3;
  o.synth.concretize_budget = 12;
  o.synth.max_iterations = 2;
  o.synth.exhaustive_cap = 40;
  o.synth.max_depth = 3;
  o.synth.max_nodes = 5;
  o.synth.max_holes = 2;
  o.synth.threads = 2;
  return o;
}

TEST(Pipeline, EndToEndOnReno) {
  core::Abagnale pipeline(tiny_pipeline_opts());
  auto traces = net::collect_traces("reno", tiny_envs(733));
  auto result = pipeline.run(traces);
  EXPECT_EQ(result.classification.label, "reno");
  EXPECT_EQ(result.dsl_name, "reno");
  EXPECT_GT(result.segments_total, 0u);
  ASSERT_TRUE(result.found());
  EXPECT_FALSE(result.handler_string().empty());
  EXPECT_TRUE(std::isfinite(result.distance()));
}

TEST(Pipeline, DslOverrideSkipsClassifier) {
  auto opts = tiny_pipeline_opts();
  opts.dsl_override = "reno";
  core::Abagnale pipeline(opts);
  auto traces = net::collect_traces("scalable", tiny_envs(733));
  auto result = pipeline.run(traces);
  EXPECT_EQ(result.dsl_name, "reno");
  EXPECT_TRUE(result.classification.label.empty());  // classifier skipped
  EXPECT_TRUE(result.found());
}

TEST(Pipeline, WarmupTrimShrinksSegmentPool) {
  auto traces = net::collect_traces("reno", tiny_envs(733));
  auto opts = tiny_pipeline_opts();
  opts.dsl_override = "reno";
  opts.synth.max_iterations = 1;
  opts.warmup_s = 0.0;
  const auto untrimmed = core::Abagnale(opts).run(traces).segments_total;
  opts.warmup_s = 4.0;
  const auto trimmed = core::Abagnale(opts).run(traces).segments_total;
  EXPECT_LT(trimmed, untrimmed);
}

}  // namespace
}  // namespace abg
