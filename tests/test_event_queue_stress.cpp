// Property-style stress tests over the discrete-event core and the distance
// metrics: randomized inputs, invariant checks. Uses parameterized sweeps so
// each seed is its own test case.
#include <gtest/gtest.h>

#include <cmath>

#include "distance/distance.hpp"
#include "net/event_queue.hpp"
#include "net/link.hpp"
#include "util/rng.hpp"

namespace abg {
namespace {

class EventQueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueProperty, ExecutionOrderIsNonDecreasingInTime) {
  util::Rng rng(GetParam());
  net::EventQueue q;
  std::vector<double> fired;
  for (int i = 0; i < 200; ++i) {
    const double when = rng.uniform(0.0, 10.0);
    q.schedule(when, [&fired, when] { fired.push_back(when); });
  }
  q.run_until(11.0);
  ASSERT_EQ(fired.size(), 200u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

TEST_P(EventQueueProperty, NestedSchedulingNeverGoesBackInTime) {
  util::Rng rng(GetParam());
  net::EventQueue q;
  double last_seen = -1.0;
  int fired = 0;
  std::function<void()> chain = [&] {
    EXPECT_GE(q.now(), last_seen);
    last_seen = q.now();
    if (++fired < 100) q.schedule_in(rng.uniform(0.0, 0.1), chain);
  };
  q.schedule(0.0, chain);
  q.run_until(1e9);
  EXPECT_EQ(fired, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueProperty, ::testing::Values(1, 2, 3, 4, 5));

class LinkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinkProperty, DeliveryTimesAreFifo) {
  util::Rng rng(GetParam());
  net::Link link(8e6, 0.005, 1e9);
  double arrival = 0.0;
  double last_delivery = 0.0;
  for (int i = 0; i < 500; ++i) {
    arrival += rng.uniform(0.0, 0.002);
    auto d = link.transmit(rng.uniform(100, 1500), arrival, rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, last_delivery);  // FIFO: no reordering
    EXPECT_GE(*d, arrival + 0.005);  // at least propagation delay
    last_delivery = *d;
  }
}

TEST_P(LinkProperty, ThroughputNeverExceedsLineRate) {
  util::Rng rng(GetParam());
  net::Link link(8e6 /* 1 MB/s */, 0.0, 1e9);
  double delivered_bytes = 0.0;
  double last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    auto d = link.transmit(1000.0, 0.0, rng);  // all offered at t=0
    ASSERT_TRUE(d.has_value());
    delivered_bytes += 1000.0;
    last = *d;
  }
  // 1 MB delivered at 1 MB/s takes >= 1 s.
  EXPECT_GE(last, delivered_bytes / 1e6 * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkProperty, ::testing::Values(7, 8, 9));

class DtwProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DtwProperty, LowerBoundedByEndpointGap) {
  // DTW must pay at least the mismatch of the aligned endpoints.
  util::Rng rng(GetParam());
  std::vector<double> a(100), b(100);
  for (auto& x : a) x = rng.uniform(0, 10);
  for (auto& x : b) x = rng.uniform(0, 10);
  const double d = distance::dtw(a, b);
  EXPECT_GE(d * 100.0, std::fabs(a.front() - b.front()) - 1e-9);
}

TEST_P(DtwProperty, InvariantToCommonOffsetInEuclideanButNotMagnitude) {
  util::Rng rng(GetParam());
  std::vector<double> a(80);
  for (auto& x : a) x = rng.uniform(0, 10);
  auto b = a;
  for (auto& x : b) x += 5.0;  // constant offset
  EXPECT_NEAR(distance::euclidean(a, b), 5.0, 1e-9);
  EXPECT_NEAR(distance::manhattan(a, b), 5.0, 1e-9);
  EXPECT_NEAR(distance::frechet(a, b), 5.0, 1e-9);
  EXPECT_NEAR(distance::correlation_distance(a, b), 0.0, 1e-9);  // shape-only
}

TEST_P(DtwProperty, PointwiseMetricsGrowWithOffsetButDtwCanRealign) {
  // Point-wise metrics grow monotonically with a vertical offset. DTW does
  // NOT on a periodic ramp: an offset matching the ramp's step realigns
  // almost perfectly (a[i] ~ b[i-1]) — the very shift-tolerance the paper
  // picks DTW for.
  std::vector<double> a(120);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i % 30);
  double prev_euc = 0.0, prev_man = 0.0;
  for (double eps : {0.5, 1.0, 2.0, 4.0}) {
    auto b = a;
    for (auto& x : b) x += eps;
    const double d_euc = distance::euclidean(a, b);
    const double d_man = distance::manhattan(a, b);
    EXPECT_GE(d_euc, prev_euc - 1e-12);
    EXPECT_GE(d_man, prev_man - 1e-12);
    prev_euc = d_euc;
    prev_man = d_man;
  }
  // The step-matched offset realigns under DTW: far cheaper than Euclidean.
  auto b = a;
  for (auto& x : b) x += 1.0;  // one ramp step
  EXPECT_LT(distance::dtw(a, b), 0.2 * distance::euclidean(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtwProperty, ::testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace abg
