#include <gtest/gtest.h>

#include "dsl/expr.hpp"

namespace abg::dsl {
namespace {

TEST(Expr, LeafDepthIsOne) {
  EXPECT_EQ(depth(*sig(Signal::kCwnd)), 1);
  EXPECT_EQ(depth(*constant(3.0)), 1);
  EXPECT_EQ(depth(*hole(0)), 1);
}

TEST(Expr, MacroCountsAsSingleLeaf) {
  // reno-inc is one leaf, so cwnd + c*reno-inc is depth 3 (§6.1).
  auto e = add(sig(Signal::kCwnd), mul(hole(0), sig(Signal::kRenoInc)));
  EXPECT_EQ(depth(*e), 3);
  EXPECT_EQ(node_count(*e), 5);
}

TEST(Expr, DepthOfNestedConditional) {
  auto e = cond(lt(sig(Signal::kVegasDiff), hole(0)), sig(Signal::kRenoInc), hole(1));
  EXPECT_EQ(depth(*e), 3);
  EXPECT_EQ(node_count(*e), 6);
}

TEST(Expr, HoleIdsInFirstAppearanceOrder) {
  auto e = add(mul(hole(3), sig(Signal::kMss)), hole(1));
  EXPECT_EQ(hole_ids(*e), (std::vector<int>{3, 1}));
  EXPECT_EQ(hole_count(*e), 2);
}

TEST(Expr, RepeatedHoleIdCountsOnce) {
  auto e = add(hole(0), mul(hole(0), sig(Signal::kMss)));
  EXPECT_EQ(hole_count(*e), 1);
}

TEST(Expr, EqualityIsStructural) {
  auto a = add(sig(Signal::kCwnd), constant(1.0));
  auto b = add(sig(Signal::kCwnd), constant(1.0));
  auto c = add(sig(Signal::kCwnd), constant(2.0));
  EXPECT_TRUE(equal(*a, *b));
  EXPECT_FALSE(equal(*a, *c));
  EXPECT_FALSE(equal(*a, *sig(Signal::kCwnd)));
}

TEST(Expr, HashAgreesWithEquality) {
  auto a = mul(sig(Signal::kAckRate), sig(Signal::kMinRtt));
  auto b = mul(sig(Signal::kAckRate), sig(Signal::kMinRtt));
  EXPECT_EQ(hash_expr(*a), hash_expr(*b));
}

TEST(Expr, FillHolesSubstitutesInOrder) {
  auto sk = add(mul(hole(0), sig(Signal::kRenoInc)), hole(1));
  auto h = fill_holes(sk, {0.7, 5.0});
  EXPECT_EQ(to_string(*h), "(0.7 * reno-inc) + 5");
  EXPECT_EQ(hole_count(*h), 0);
}

TEST(Expr, FillHolesReusesSharedIds) {
  auto sk = add(hole(0), mul(hole(0), sig(Signal::kMss)));
  auto h = fill_holes(sk, {2.5});
  EXPECT_EQ(to_string(*h), "2.5 + (2.5 * mss)");
}

TEST(Expr, ToSketchReplacesConstants) {
  auto h = add(sig(Signal::kCwnd), mul(constant(0.7), sig(Signal::kRenoInc)));
  auto sk = to_sketch(h);
  EXPECT_EQ(hole_count(*sk), 1);
  EXPECT_EQ(to_string(*sk), "cwnd + (c0 * reno-inc)");
}

TEST(Expr, ToStringRendersAllOperators) {
  EXPECT_EQ(to_string(*add(sig(Signal::kCwnd), sig(Signal::kMss))), "cwnd + mss");
  EXPECT_EQ(to_string(*sub(sig(Signal::kCwnd), sig(Signal::kMss))), "cwnd - mss");
  EXPECT_EQ(to_string(*div(sig(Signal::kCwnd), sig(Signal::kMss))), "cwnd / mss");
  EXPECT_EQ(to_string(*cube(sig(Signal::kTimeSinceLoss))), "time-since-loss^3");
  EXPECT_EQ(to_string(*cbrt(sig(Signal::kCwnd))), "cbrt(cwnd)");
  EXPECT_EQ(to_string(*mod_eq(sig(Signal::kCwnd), constant(2.7))), "cwnd % 2.7 = 0");
  EXPECT_EQ(to_string(*cond(lt(sig(Signal::kRtt), constant(1.0)), sig(Signal::kMss),
                            constant(0.0))),
            "{rtt < 1} ? mss : 0");
}

TEST(Expr, OpMetadata) {
  EXPECT_TRUE(op_returns_bool(Op::kLt));
  EXPECT_TRUE(op_returns_bool(Op::kModEq));
  EXPECT_FALSE(op_returns_bool(Op::kAdd));
  EXPECT_EQ(op_arity(Op::kCond), 3);
  EXPECT_EQ(op_arity(Op::kCbrt), 1);
  EXPECT_EQ(op_arity(Op::kMul), 2);
}

TEST(Expr, SignalMetadata) {
  EXPECT_TRUE(signal_is_macro(Signal::kRenoInc));
  EXPECT_TRUE(signal_is_macro(Signal::kVegasDiff));
  EXPECT_FALSE(signal_is_macro(Signal::kCwnd));
  EXPECT_STREQ(signal_name(Signal::kAckRate), "ack-rate");
}

TEST(Expr, SignalsUsedDeduplicates) {
  auto e = add(sig(Signal::kCwnd), mul(sig(Signal::kCwnd), sig(Signal::kMss)));
  EXPECT_EQ(signals_used(*e), (std::vector<Signal>{Signal::kCwnd, Signal::kMss}));
}

TEST(Expr, OpsUsedDeduplicates) {
  auto e = add(add(sig(Signal::kCwnd), sig(Signal::kMss)), mul(hole(0), sig(Signal::kMss)));
  EXPECT_EQ(ops_used(*e), (std::vector<Op>{Op::kAdd, Op::kMul}));
}

TEST(Expr, BoolAndNumKinds) {
  EXPECT_TRUE(lt(sig(Signal::kRtt), hole(0))->is_bool());
  EXPECT_FALSE(lt(sig(Signal::kRtt), hole(0))->is_num());
  EXPECT_TRUE(add(sig(Signal::kRtt), hole(0))->is_num());
  EXPECT_TRUE(sig(Signal::kCwnd)->is_num());
}

}  // namespace
}  // namespace abg::dsl
