// Tests for the extensions beyond the core pipeline: the Mister880
// decision-problem baseline (§2.2), multi-event replay with loss-handler
// synthesis (§3's generalization), and simulator cross traffic.
#include <gtest/gtest.h>

#include <cmath>

#include "net/simulator.hpp"
#include "dsl/eval.hpp"
#include "synth/event_replay.hpp"
#include "synth/mister880.hpp"
#include "trace/noise.hpp"
#include "trace/trace_io.hpp"

namespace abg::synth {
namespace {

trace::Segment synthetic_reno_segment(std::size_t n) {
  // Exact replayable ground truth: cwnd' = cwnd + mss per ACK.
  trace::Segment seg;
  double cwnd = 10 * 1448.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace::AckSample s;
    s.sig.now = 0.05 * static_cast<double>(i);
    s.sig.mss = 1448.0;
    s.sig.cwnd = cwnd;
    s.sig.acked_bytes = 1448.0;
    s.sig.rtt = 0.05;
    s.sig.min_rtt = 0.05;
    s.sig.max_rtt = 0.06;
    s.sig.ack_rate = 2e5;
    cwnd += 1448.0;
    s.cwnd_after = cwnd;
    seg.samples.push_back(s);
  }
  return seg;
}

dsl::Dsl tiny_dsl() {
  dsl::Dsl d = dsl::reno_dsl();
  d.signals = {dsl::Signal::kCwnd, dsl::Signal::kMss, dsl::Signal::kRenoInc};
  d.ops = {dsl::Op::kAdd, dsl::Op::kMul};
  return d;
}

TEST(Mister880, ExactMatchAcceptsGroundTruth) {
  auto seg = synthetic_reno_segment(40);
  auto truth = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::sig(dsl::Signal::kMss));
  EXPECT_TRUE(exact_match(*truth, seg, 0.01));
}

TEST(Mister880, ExactMatchRejectsCloseButWrong) {
  auto seg = synthetic_reno_segment(40);
  // 0.9 MSS per ACK: visually close, but not an exact match.
  auto close = dsl::add(dsl::sig(dsl::Signal::kCwnd),
                        dsl::mul(dsl::constant(0.9), dsl::sig(dsl::Signal::kMss)));
  EXPECT_FALSE(exact_match(*close, seg, 0.01));
}

TEST(Mister880, SynthesizesOnCleanTrace) {
  auto seg = synthetic_reno_segment(40);
  Mister880Options opts;
  opts.max_depth = 3;
  opts.max_nodes = 5;
  opts.max_holes = 2;
  auto result = mister880_synthesize(tiny_dsl(), {seg}, opts);
  ASSERT_TRUE(result.found());
  EXPECT_TRUE(exact_match(*result.handler, seg, opts.match_tolerance));
}

TEST(Mister880, FailsOnNoisyTrace) {
  // The paper's key contrast (§2.2): with measurement noise the decision
  // formulation rejects every candidate — even the ground truth.
  auto seg = synthetic_reno_segment(60);
  util::Rng rng(3);
  for (auto& s : seg.samples) {
    s.cwnd_after *= 1.0 + rng.uniform(-0.05, 0.05);
  }
  Mister880Options opts;
  opts.max_depth = 3;
  opts.max_nodes = 5;
  opts.max_holes = 2;
  auto result = mister880_synthesize(tiny_dsl(), {seg}, opts);
  EXPECT_FALSE(result.found());
  EXPECT_GT(result.handlers_tried, 0u);
}

TEST(Mister880, RespectsSketchCap) {
  auto seg = synthetic_reno_segment(20);
  // Alternate large jumps: no deterministic expression can match exactly.
  for (std::size_t i = 0; i < seg.samples.size(); ++i) {
    if (i % 2 == 1) seg.samples[i].cwnd_after *= 1.7;
  }
  Mister880Options opts;
  opts.max_sketches = 5;
  opts.max_depth = 3;
  opts.max_nodes = 5;
  auto result = mister880_synthesize(tiny_dsl(), {seg}, opts);
  EXPECT_FALSE(result.found());
  EXPECT_LE(result.sketches_tried, 5u);
}

trace::Trace reno_like_trace() {
  // cwnd += mss per ACK; halve at loss samples.
  trace::Trace t;
  double cwnd = 20 * 1448.0;
  for (std::size_t i = 0; i < 300; ++i) {
    trace::AckSample s;
    s.sig.now = 0.05 * static_cast<double>(i);
    s.sig.mss = 1448.0;
    s.sig.cwnd = cwnd;
    s.sig.acked_bytes = 1448.0;
    s.sig.rtt = 0.05;
    s.sig.min_rtt = 0.05;
    s.sig.max_rtt = 0.06;
    s.sig.ack_rate = 2e5;
    if (i % 100 == 99) {
      s.loss_event = true;
      s.sig.acked_bytes = 0.0;
      cwnd *= 0.5;
    } else {
      cwnd += 1448.0;
    }
    s.cwnd_after = cwnd;
    t.samples.push_back(s);
  }
  return t;
}

TEST(EventReplay, AppliesLossHandlerAtLossSamples) {
  auto t = reno_like_trace();
  auto ack = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::sig(dsl::Signal::kMss));
  auto loss = dsl::mul(dsl::constant(0.5), dsl::sig(dsl::Signal::kCwnd));
  const auto series = replay_trace(*ack, *loss, t);
  ASSERT_EQ(series.size(), t.samples.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_NEAR(series[i], t.samples[i].cwnd_after / 1448.0, 1e-9) << i;
  }
  EXPECT_NEAR(trace_distance(*ack, *loss, t, distance::Metric::kDtw), 0.0, 1e-9);
}

TEST(EventReplay, WrongLossHandlerScoresWorse) {
  auto t = reno_like_trace();
  auto ack = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::sig(dsl::Signal::kMss));
  auto halve = dsl::mul(dsl::constant(0.5), dsl::sig(dsl::Signal::kCwnd));
  auto hold = dsl::sig(dsl::Signal::kCwnd);  // ignores the loss
  EXPECT_LT(trace_distance(*ack, *halve, t, distance::Metric::kDtw),
            trace_distance(*ack, *hold, t, distance::Metric::kDtw));
}

TEST(EventReplay, SynthesizesTheHalvingLossHandler) {
  auto t = reno_like_trace();
  auto ack = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::sig(dsl::Signal::kMss));
  dsl::Dsl d = tiny_dsl();
  LossSynthesisOptions opts;
  opts.max_sketches = 100;
  auto result = synthesize_loss_handler(d, *ack, {t}, opts);
  ASSERT_TRUE(result.found());
  // The recovered handler must behave like *0.5 at a loss point.
  cca::Signals sig = t.samples[99].sig;
  const double out = dsl::eval(*result.handler, sig);
  EXPECT_NEAR(out, 0.5 * sig.cwnd, 0.1 * sig.cwnd)
      << dsl::to_string(*result.handler);
}

TEST(EventReplay, EmptyTraceYieldsEmptySeries) {
  trace::Trace t;
  auto ack = dsl::sig(dsl::Signal::kCwnd);
  EXPECT_TRUE(replay_trace(*ack, *ack, t).empty());
}

}  // namespace
}  // namespace abg::synth

namespace abg::net {
namespace {

TEST(CrossTraffic, ReducesFlowThroughput) {
  trace::Environment clean;
  clean.bandwidth_bps = 10e6;
  clean.rtt_s = 0.04;
  clean.duration_s = 20.0;  // long enough that warm-up noise washes out
  clean.seed = 31;
  trace::Environment busy = clean;
  busy.cross_traffic_bps = 5e6;  // half the link taken by cross traffic

  auto a = run_connection("reno", clean);
  auto b = run_connection("reno", busy);
  const double delivered_clean = a.samples.back().ack_seq;
  const double delivered_busy = b.samples.back().ack_seq;
  EXPECT_LT(delivered_busy, 0.85 * delivered_clean);
  EXPECT_GT(delivered_busy, 0.2 * delivered_clean);  // still makes progress
}

TEST(CrossTraffic, CausesExtraLossEvents) {
  trace::Environment env;
  env.bandwidth_bps = 10e6;
  env.rtt_s = 0.04;
  env.duration_s = 8.0;
  env.seed = 31;
  auto clean = run_connection("vegas", env);
  env.cross_traffic_bps = 6e6;
  auto busy = run_connection("vegas", env);
  auto losses = [](const trace::Trace& t) {
    int n = 0;
    for (const auto& s : t.samples) n += s.loss_event;
    return n;
  };
  EXPECT_GE(losses(busy), losses(clean));
}

TEST(CrossTraffic, RoundTripsThroughCsv) {
  trace::Environment env;
  env.cross_traffic_bps = 3e6;
  trace::Trace t;
  t.cca_name = "reno";
  t.env = env;
  trace::AckSample s;
  s.sig.now = 1.0;
  t.samples.push_back(s);
  auto parsed = trace::from_csv(trace::to_csv(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->env.cross_traffic_bps, 3e6);
}

}  // namespace
}  // namespace abg::net
