#include <gtest/gtest.h>

#include "dsl/known_handlers.hpp"
#include "dsl/units.hpp"

namespace abg::dsl {
namespace {

TEST(Units, SignalUnitsAreCorrect) {
  EXPECT_EQ(signal_unit(Signal::kCwnd), (UnitVec{1, 0}));
  EXPECT_EQ(signal_unit(Signal::kMss), (UnitVec{1, 0}));
  EXPECT_EQ(signal_unit(Signal::kRtt), (UnitVec{0, 1}));
  EXPECT_EQ(signal_unit(Signal::kAckRate), (UnitVec{1, -1}));
  EXPECT_EQ(signal_unit(Signal::kRenoInc), (UnitVec{1, 0}));
  EXPECT_EQ(signal_unit(Signal::kVegasDiff), (UnitVec{0, 0}));
  EXPECT_EQ(signal_unit(Signal::kRttGradient), (UnitVec{0, 0}));
}

TEST(Units, ConcreteInferenceAddRequiresSameUnits) {
  EXPECT_TRUE(infer_unit_concrete(*add(sig(Signal::kCwnd), sig(Signal::kMss))).has_value());
  EXPECT_FALSE(infer_unit_concrete(*add(sig(Signal::kCwnd), sig(Signal::kRtt))).has_value());
}

TEST(Units, ConcreteInferenceMulAddsExponents) {
  auto u = infer_unit_concrete(*mul(sig(Signal::kAckRate), sig(Signal::kMinRtt)));
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, (UnitVec{1, 0}));  // bytes/s * s = bytes
}

TEST(Units, ConcreteInferenceDivSubtractsExponents) {
  auto u = infer_unit_concrete(*div(sig(Signal::kCwnd), sig(Signal::kRtt)));
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, (UnitVec{1, -1}));  // a rate
}

TEST(Units, CubeTriplesExponents) {
  auto u = infer_unit_concrete(*cube(sig(Signal::kRtt)));
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, (UnitVec{0, 3}));
}

TEST(Units, CbrtRequiresDivisibleExponents) {
  // cbrt(rtt) would have unit s^(1/3): rejected under integer units (§5.5).
  EXPECT_FALSE(infer_unit_concrete(*cbrt(sig(Signal::kRtt))).has_value());
  EXPECT_TRUE(infer_unit_concrete(*cbrt(cube(sig(Signal::kRtt)))).has_value());
}

TEST(Units, ComparisonRequiresSameUnits) {
  EXPECT_TRUE(infer_unit_concrete(
                  *cond(lt(sig(Signal::kRtt), sig(Signal::kMinRtt)), sig(Signal::kCwnd),
                        sig(Signal::kMss)))
                  .has_value());
  EXPECT_FALSE(infer_unit_concrete(
                   *cond(lt(sig(Signal::kRtt), sig(Signal::kCwnd)), sig(Signal::kCwnd),
                         sig(Signal::kMss)))
                   .has_value());
}

TEST(Units, UnitCheckAcceptsBytesOutput) {
  EXPECT_TRUE(unit_check(*add(sig(Signal::kCwnd), sig(Signal::kRenoInc))));
  EXPECT_FALSE(unit_check(*sig(Signal::kRtt)));  // seconds, not bytes
}

TEST(Units, HolesArePolymorphic) {
  // Hybla's handler: cwnd + c * rtt * reno-inc type-checks because the hole
  // can absorb 1/seconds (§5.3's "8 * RTT * reno-inc").
  auto e = add(sig(Signal::kCwnd), mul(hole(0), mul(sig(Signal::kRtt), sig(Signal::kRenoInc))));
  EXPECT_TRUE(unit_check(*e));
}

TEST(Units, HolePolymorphismIsBounded) {
  // rtt^3 * c needs c with unit s^-3 — outside the +/-2 exponent range.
  auto e = mul(hole(0), mul(sig(Signal::kRtt), cube(sig(Signal::kRtt))));
  EXPECT_FALSE(unit_check(*e));
}

TEST(Units, BareHoleIsBytesCapable) {
  EXPECT_TRUE(unit_check(*hole(0)));  // a constant window in bytes
}

TEST(Units, RejectsInconsistentConditionGuard) {
  auto e = cond(lt(sig(Signal::kRtt), sig(Signal::kCwnd)), sig(Signal::kCwnd),
                sig(Signal::kCwnd));
  EXPECT_FALSE(unit_check(*e));
}

TEST(Units, FineTunedHandlersUnitCheck) {
  // Every fine-tuned handler from Table 2 must pass the unit checker after
  // its constants are re-abstracted into holes (constants absorb units).
  for (const auto& k : all_known_handlers()) {
    if (!k.fine_tuned) continue;
    if (k.cca == "cubic") continue;  // Cubic ran with units disabled (§5.5)
    EXPECT_TRUE(unit_check(*to_sketch(k.fine_tuned))) << k.cca;
  }
}

TEST(Units, BoolRootedExpressionsHaveNoUnit) {
  EXPECT_FALSE(unit_check(*lt(sig(Signal::kRtt), sig(Signal::kMinRtt))));
  EXPECT_FALSE(infer_unit_concrete(*lt(sig(Signal::kRtt), sig(Signal::kMinRtt))).has_value());
}

}  // namespace
}  // namespace abg::dsl
