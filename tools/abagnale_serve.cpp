// abagnale_serve: the crash-durable synthesis daemon (ISSUE 8).
//
//   abagnale_serve --state-dir DIR [--port P] [--threads N]
//                  [--max-concurrent-jobs J] [--queue-depth Q]
//                  [--rate R] [--burst B] [--max-job-timeout-s S]
//                  [--metrics-out FILE]
//
// Serves the job API (POST /jobs, GET /jobs[/<id>[/result]], DELETE
// /jobs/<id>) plus /healthz and /metrics on 127.0.0.1:PORT. All job state
// lives under --state-dir as an fsync'd WAL plus per-job spec / result /
// checkpoint files; restarting with the same --state-dir recovers every
// non-terminal job and resumes running ones from their last checkpoint —
// including after kill -9.
//
// SIGTERM/SIGINT trigger a graceful drain: admissions close, queued and
// running jobs are parked as "suspended" (running ones keep their
// checkpoints), the WAL is flushed, and the process exits 0. A second
// signal exits immediately (the WAL is fsync'd per record, so even that is
// only as bad as kill -9).
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/status_server.hpp"
#include "serve/service.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char b = 0;
  // Async-signal-safe wake of the main loop; errors are unactionable here.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --state-dir DIR [--port P] [--threads N]\n"
               "          [--max-concurrent-jobs J] [--queue-depth Q]\n"
               "          [--rate SUBMITS_PER_S] [--burst B]\n"
               "          [--max-job-timeout-s S] [--metrics-out FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace abg;

  std::string state_dir;
  std::string metrics_out;
  int port = 8378;
  serve::ServiceOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--state-dir") {
      state_dir = next("--state-dir");
    } else if (arg == "--port") {
      port = std::atoi(next("--port"));
    } else if (arg == "--threads") {
      opts.engine.threads = static_cast<std::size_t>(std::atoi(next("--threads")));
    } else if (arg == "--max-concurrent-jobs") {
      opts.engine.max_concurrent_jobs =
          static_cast<std::size_t>(std::atoi(next("--max-concurrent-jobs")));
    } else if (arg == "--queue-depth") {
      opts.queue_depth = static_cast<std::size_t>(std::atoi(next("--queue-depth")));
    } else if (arg == "--rate") {
      opts.admission.rate_per_s = std::atof(next("--rate"));
    } else if (arg == "--burst") {
      opts.admission.burst = std::atof(next("--burst"));
    } else if (arg == "--max-job-timeout-s") {
      opts.max_job_timeout_s = std::atof(next("--max-job-timeout-s"));
    } else if (arg == "--metrics-out") {
      metrics_out = next("--metrics-out");
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (state_dir.empty()) return usage(argv[0]);
  opts.state_dir = state_dir;

  // A daemon should narrate itself unless the operator said otherwise.
  if (!util::log_level_from_env()) util::set_log_level(util::LogLevel::kInfo);

  // Eagerly create the counters the CI recovery gate asserts on, so a
  // metrics snapshot always carries them (at 0) even when nothing fired.
  obs::counter("obs.journal_dropped");
  obs::counter("serve.jobs_recovered");

  serve::Service service(opts);
  if (auto st = service.start(); !st.is_ok()) {
    std::fprintf(stderr, "abagnale_serve: %s\n", st.to_string().c_str());
    return util::exit_code(st.code());
  }

  obs::StatusServer server;
  service.mount(server);
  std::string err;
  if (!server.start(static_cast<std::uint16_t>(port), &err)) {
    std::fprintf(stderr, "abagnale_serve: cannot listen: %s\n", err.c_str());
    service.drain_and_stop();
    return util::exit_code(util::StatusCode::kIoError);
  }
  std::printf("abagnale_serve: listening on 127.0.0.1:%u, state dir %s (%llu job%s recovered)\n",
              server.port(), state_dir.c_str(),
              static_cast<unsigned long long>(service.jobs_recovered()),
              service.jobs_recovered() == 1 ? "" : "s");
  std::fflush(stdout);

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "abagnale_serve: pipe: %s\n", std::strerror(errno));
    return util::exit_code(util::StatusCode::kIoError);
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // Park until the first signal.
  for (;;) {
    pollfd p{g_signal_pipe[0], POLLIN, 0};
    const int pr = ::poll(&p, 1, -1);
    if (pr > 0 && (p.revents & POLLIN)) break;
    if (pr < 0 && errno != EINTR) break;
  }

  std::printf("abagnale_serve: signal received, draining\n");
  std::fflush(stdout);
  server.stop();  // stop answering before parking jobs
  service.drain_and_stop();
  if (!metrics_out.empty() && !obs::write_metrics_json(metrics_out)) {
    std::fprintf(stderr, "abagnale_serve: cannot write %s\n", metrics_out.c_str());
    return util::exit_code(util::StatusCode::kIoError);
  }
  std::printf("abagnale_serve: drained, bye\n");
  return 0;
}
