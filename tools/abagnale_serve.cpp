// abagnale_serve: the crash-durable synthesis daemon (ISSUE 8).
//
//   abagnale_serve --state-dir DIR [--port P] [--threads N]
//                  [--max-concurrent-jobs J] [--queue-depth Q]
//                  [--rate R] [--burst B] [--max-job-timeout-s S]
//                  [--metrics-out FILE] [--workers N | HOST:PORT,...]
//
// --workers turns on distributed refinement search (ISSUE 9): pipeline jobs
// over trace paths run through a dist::Coordinator that shards buckets
// across abagnale_worker processes — `--workers 4` spawns four on ephemeral
// ports, `--workers 7001,7002` attaches to externally managed ones. Worker
// death mid-job is survived by shard reassignment; everything else about
// job durability below is unchanged.
//
// Serves the job API (POST /jobs, GET /jobs[/<id>[/result]], DELETE
// /jobs/<id>) plus /healthz and /metrics on 127.0.0.1:PORT. All job state
// lives under --state-dir as an fsync'd WAL plus per-job spec / result /
// checkpoint files; restarting with the same --state-dir recovers every
// non-terminal job and resumes running ones from their last checkpoint —
// including after kill -9.
//
// SIGTERM/SIGINT trigger a graceful drain: admissions close, queued and
// running jobs are parked as "suspended" (running ones keep their
// checkpoints), the WAL is flushed, and the process exits 0. A second
// signal exits immediately (the WAL is fsync'd per record, so even that is
// only as bad as kill -9).
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "api/version.hpp"
#include "dist/coordinator.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/status_server.hpp"
#include "serve/service.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char b = 0;
  // Async-signal-safe wake of the main loop; errors are unactionable here.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --state-dir DIR [--port P] [--threads N]\n"
               "          [--max-concurrent-jobs J] [--queue-depth Q]\n"
               "          [--rate SUBMITS_PER_S] [--burst B]\n"
               "          [--max-job-timeout-s S] [--metrics-out FILE]\n"
               "          [--workers N | HOST:PORT,HOST:PORT,...]\n",
               argv0);
  return 2;
}

// "abagnale_worker" next to this binary; bare name (PATH lookup via execvp)
// when argv[0] has no directory component.
std::string worker_binary(const char* argv0) {
  const std::string self(argv0);
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "abagnale_worker";
  return self.substr(0, slash + 1) + "abagnale_worker";
}

// Spawn `n` abagnale_worker children on ephemeral ports, discovering the
// bound port of each through --port-file (written atomically once the worker
// listens, so there is no race). Port files and per-worker metrics land in
// the state dir: worker-<i>.port / worker-<i>.metrics.json.
bool spawn_workers(const char* argv0, int n, const std::string& state_dir,
                   std::vector<pid_t>* pids,
                   std::vector<abg::dist::WorkerEndpoint>* endpoints) {
  const std::string binary = worker_binary(argv0);
  std::vector<std::string> port_files;
  for (int i = 0; i < n; ++i) {
    const std::string stem = state_dir + "/worker-" + std::to_string(i);
    const std::string port_file = stem + ".port";
    ::unlink(port_file.c_str());
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "abagnale_serve: fork: %s\n", std::strerror(errno));
      return false;
    }
    if (pid == 0) {
      const std::string metrics = stem + ".metrics.json";
      ::execlp(binary.c_str(), "abagnale_worker", "--port-file", port_file.c_str(),
               "--metrics-out", metrics.c_str(), static_cast<char*>(nullptr));
      std::fprintf(stderr, "abagnale_serve: exec %s: %s\n", binary.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    pids->push_back(pid);
    port_files.push_back(port_file);
  }
  // Each worker binds in milliseconds; 10s covers a loaded CI box.
  for (int i = 0; i < n; ++i) {
    std::string content;
    for (int tries = 0; tries < 500; ++tries) {
      FILE* f = std::fopen(port_files[i].c_str(), "r");
      if (f != nullptr) {
        char buf[32] = {0};
        const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
        std::fclose(f);
        if (got > 0) {
          content.assign(buf, got);
          break;
        }
      }
      // A worker that exec-failed or died never writes its port file.
      int status = 0;
      if (::waitpid((*pids)[i], &status, WNOHANG) == (*pids)[i]) {
        std::fprintf(stderr, "abagnale_serve: worker %d exited before listening\n", i);
        (*pids)[i] = -1;
        return false;
      }
      ::usleep(20 * 1000);
    }
    const long port = content.empty() ? 0 : std::strtol(content.c_str(), nullptr, 10);
    if (port <= 0 || port > 65535) {
      std::fprintf(stderr, "abagnale_serve: worker %d never reported a port\n", i);
      return false;
    }
    endpoints->push_back({"127.0.0.1", static_cast<std::uint16_t>(port)});
  }
  return true;
}

void stop_workers(std::vector<pid_t>& pids) {
  for (const pid_t pid : pids) {
    if (pid > 0) ::kill(pid, SIGTERM);
  }
  for (const pid_t pid : pids) {
    if (pid > 0) ::waitpid(pid, nullptr, 0);
  }
  pids.clear();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace abg;

  std::string state_dir;
  std::string metrics_out;
  std::string workers_arg;
  int port = 8378;
  serve::ServiceOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--state-dir") {
      state_dir = next("--state-dir");
    } else if (arg == "--port") {
      port = std::atoi(next("--port"));
    } else if (arg == "--threads") {
      opts.engine.threads = static_cast<std::size_t>(std::atoi(next("--threads")));
    } else if (arg == "--max-concurrent-jobs") {
      opts.engine.max_concurrent_jobs =
          static_cast<std::size_t>(std::atoi(next("--max-concurrent-jobs")));
    } else if (arg == "--queue-depth") {
      opts.queue_depth = static_cast<std::size_t>(std::atoi(next("--queue-depth")));
    } else if (arg == "--rate") {
      opts.admission.rate_per_s = std::atof(next("--rate"));
    } else if (arg == "--burst") {
      opts.admission.burst = std::atof(next("--burst"));
    } else if (arg == "--max-job-timeout-s") {
      opts.max_job_timeout_s = std::atof(next("--max-job-timeout-s"));
    } else if (arg == "--metrics-out") {
      metrics_out = next("--metrics-out");
    } else if (arg == "--workers") {
      workers_arg = next("--workers");
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (state_dir.empty()) return usage(argv[0]);
  opts.state_dir = state_dir;

  // A daemon should narrate itself unless the operator said otherwise.
  if (!util::log_level_from_env()) util::set_log_level(util::LogLevel::kInfo);
  obs::set_report_meta("api_version", ABG_API_VERSION);

  // Eagerly create the counters the CI recovery gate asserts on, so a
  // metrics snapshot always carries them (at 0) even when nothing fired.
  obs::counter("obs.journal_dropped");
  obs::counter("serve.jobs_recovered");

  // --workers: an all-digit value spawns that many abagnale_worker children
  // on ephemeral ports (port-file discovery); anything else is an attach
  // list, "host:port,host:port,..." — the form the dist-smoke CI job uses so
  // it can kill -9 a specific worker pid it started itself.
  std::vector<pid_t> worker_pids;
  if (!workers_arg.empty()) {
    obs::counter("dist.shards_reassigned");
    obs::counter("dist.workers_lost");
    const bool all_digits = workers_arg.find_first_not_of("0123456789") == std::string::npos;
    if (all_digits) {
      const int n = std::atoi(workers_arg.c_str());
      if (n < 1 || n > 64) {
        std::fprintf(stderr, "abagnale_serve: --workers count must be 1..64\n");
        return 2;
      }
      // The port files need the state dir before Service::start creates it.
      if (::mkdir(state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
        std::fprintf(stderr, "abagnale_serve: mkdir %s: %s\n", state_dir.c_str(),
                     std::strerror(errno));
        return util::exit_code(util::StatusCode::kIoError);
      }
      if (!spawn_workers(argv[0], n, state_dir, &worker_pids, &opts.dist.workers)) {
        stop_workers(worker_pids);
        return util::exit_code(util::StatusCode::kIoError);
      }
    } else {
      auto eps = dist::parse_worker_endpoints(workers_arg);
      if (!eps.ok()) {
        std::fprintf(stderr, "abagnale_serve: --workers: %s\n",
                     eps.status().to_string().c_str());
        return 2;
      }
      opts.dist.workers = std::move(*eps);
    }
  }

  serve::Service service(opts);
  if (auto st = service.start(); !st.is_ok()) {
    std::fprintf(stderr, "abagnale_serve: %s\n", st.to_string().c_str());
    stop_workers(worker_pids);
    return util::exit_code(st.code());
  }

  obs::StatusServer server;
  service.mount(server);
  std::string err;
  if (!server.start(static_cast<std::uint16_t>(port), &err)) {
    std::fprintf(stderr, "abagnale_serve: cannot listen: %s\n", err.c_str());
    service.drain_and_stop();
    stop_workers(worker_pids);
    return util::exit_code(util::StatusCode::kIoError);
  }
  std::printf("abagnale_serve: listening on 127.0.0.1:%u, state dir %s (%llu job%s recovered)\n",
              server.port(), state_dir.c_str(),
              static_cast<unsigned long long>(service.jobs_recovered()),
              service.jobs_recovered() == 1 ? "" : "s");
  if (!opts.dist.workers.empty()) {
    std::printf("abagnale_serve: distributed dispatch over %zu worker%s (%s)\n",
                opts.dist.workers.size(), opts.dist.workers.size() == 1 ? "" : "s",
                worker_pids.empty() ? "attached" : "spawned");
  }
  std::fflush(stdout);

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "abagnale_serve: pipe: %s\n", std::strerror(errno));
    return util::exit_code(util::StatusCode::kIoError);
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // Park until the first signal.
  for (;;) {
    pollfd p{g_signal_pipe[0], POLLIN, 0};
    const int pr = ::poll(&p, 1, -1);
    if (pr > 0 && (p.revents & POLLIN)) break;
    if (pr < 0 && errno != EINTR) break;
  }

  std::printf("abagnale_serve: signal received, draining\n");
  std::fflush(stdout);
  server.stop();  // stop answering before parking jobs
  service.drain_and_stop();
  stop_workers(worker_pids);  // SIGTERM + reap; workers hold no durable state
  if (!metrics_out.empty() && !obs::write_metrics_json(metrics_out)) {
    std::fprintf(stderr, "abagnale_serve: cannot write %s\n", metrics_out.c_str());
    return util::exit_code(util::StatusCode::kIoError);
  }
  std::printf("abagnale_serve: drained, bye\n");
  return 0;
}
