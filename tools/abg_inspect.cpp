// abg_inspect — forensic queries over search journals (ISSUE 6).
//
// Reads the binary journal written by `abagnale_cli --journal-out` (see
// obs/journal.hpp for the format) and answers the questions the aggregate
// metrics can't:
//
//   abg_inspect funnel j.journal [--job NAME] [--by bucket|sketch|iteration]
//                                [--check metrics.json]
//       The search funnel: sketches -> enumerated candidates -> terminal
//       outcome (cache hit / evaluated / abandoned) -> selected, grouped by
//       bucket (default), sketch, or iteration, plus the DTW-level detail
//       (LB prunes, row abandons, completed evals, cells). With --check,
//       reconciles the funnel totals against an obs metrics JSON and exits
//       nonzero on any mismatch — the CI self-check.
//
//   abg_inspect why j.journal <fingerprint>
//       Full lifecycle of one candidate (fingerprint as printed by
//       near-misses/diff, 0x-prefixed hex or decimal), in time order.
//
//   abg_inspect near-misses j.journal [--top K]
//       The K candidates (default 10) that came closest to beating the run
//       winner, with their distance gap.
//
//   abg_inspect hotspots j.journal [--by bucket|segment|kernel]
//       Where DTW cells were spent, by bucket (default), working-set segment
//       index, or the DTW kernel that burned them (scalar/sse2/avx2 — each
//       distance event is stamped with the resolved distance::Simd tier, so a
//       mixed-kernel run shows exactly which tier did the work).
//
//   abg_inspect diff a.journal b.journal
//       Funnel deltas between two runs of the same workload (canonically:
//       fast-path vs --no-fast-path), and whether they selected the same
//       winner. Exits 1 when the winners differ.
//
// Exit: 0 ok, 1 check/diff mismatch, otherwise the usual error classes.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/journal.hpp"
#include "util/json_parse.hpp"
#include "util/status.hpp"

namespace {

using abg::obs::JournalFile;
using abg::obs::JournalKind;
using abg::obs::JournalRecord;

int usage() {
  std::fprintf(
      stderr,
      "usage: abg_inspect <command> <journal> [options]\n"
      "  funnel <j> [--job NAME] [--by bucket|sketch|iteration] [--check metrics.json]\n"
      "  why <j> <fingerprint>\n"
      "  near-misses <j> [--top K]\n"
      "  hotspots <j> [--by bucket|segment|kernel]\n"
      "  diff <a.journal> <b.journal>\n");
  return abg::util::exit_code(abg::util::StatusCode::kInvalidArgument);
}

int load(const std::string& path, JournalFile* out) {
  std::string err;
  if (!abg::obs::read_journal(path, out, &err)) {
    std::fprintf(stderr, "abg_inspect: %s: %s\n", path.c_str(), err.c_str());
    return abg::util::exit_code(abg::util::StatusCode::kIoError);
  }
  return 0;
}

bool is_kind(const JournalRecord& r, JournalKind k) {
  return r.kind == static_cast<std::uint8_t>(k);
}

// Per-group funnel tallies, one slot per JournalKind plus the cell total.
struct Funnel {
  std::uint64_t by_kind[abg::obs::kJournalKindCount] = {};
  std::uint64_t cells = 0;

  std::uint64_t operator[](JournalKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }
  void add(const JournalRecord& r) {
    ++by_kind[r.kind];
    if (is_kind(r, JournalKind::kDtwEval) || is_kind(r, JournalKind::kRowAbandon)) {
      cells += r.cells;
    }
  }
};

enum class GroupBy { kBucket, kSketch, kIteration, kSegment, kKernel };

// `allow_segment` distinguishes the two --by vocabularies: funnel groups by
// search structure (bucket/sketch/iteration), hotspots by cost location
// (bucket/segment/kernel).
bool parse_group_by(const std::string& s, GroupBy* out, bool allow_segment) {
  if (s == "bucket") {
    *out = GroupBy::kBucket;
  } else if (s == "sketch" && !allow_segment) {
    *out = GroupBy::kSketch;
  } else if (s == "iteration" && !allow_segment) {
    *out = GroupBy::kIteration;
  } else if (s == "segment" && allow_segment) {
    *out = GroupBy::kSegment;
  } else if (s == "kernel" && allow_segment) {
    *out = GroupBy::kKernel;
  } else {
    return false;
  }
  return true;
}

// Names mirror distance::Simd's numeric values; the journal stores the raw
// byte so this tool does not have to link the distance library.
std::string kernel_name(std::uint8_t kernel) {
  switch (kernel) {
    case 0: return "scalar";
    case 1: return "sse2";
    case 2: return "avx2";
    default: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "kernel%u", kernel);
      return buf;
    }
  }
}

std::string group_key(const JournalFile& jf, const JournalRecord& r, GroupBy by) {
  char buf[32];
  switch (by) {
    case GroupBy::kBucket: {
      const std::string& b = jf.str(r.bucket);
      return b.empty() ? "(none)" : b;
    }
    case GroupBy::kSketch:
      if (r.sketch == 0) return "(none)";
      std::snprintf(buf, sizeof(buf), "%016" PRIx64, r.sketch);
      return buf;
    case GroupBy::kIteration:
      std::snprintf(buf, sizeof(buf), "iter %u", r.iter);
      return buf;
    case GroupBy::kSegment:
      if (r.segment == abg::obs::kJournalNoSegment) return "(none)";
      std::snprintf(buf, sizeof(buf), "seg %u", r.segment);
      return buf;
    case GroupBy::kKernel:
      return kernel_name(r.kernel);
  }
  return "?";
}

// The run winner: the kSelected record flagged final, else the last kSelected.
const JournalRecord* find_winner(const JournalFile& jf) {
  const JournalRecord* last = nullptr;
  for (const auto& r : jf.records) {
    if (!is_kind(r, JournalKind::kSelected)) continue;
    if (r.flags & abg::obs::kJournalFinal) return &r;
    last = &r;
  }
  return last;
}

// --- funnel ------------------------------------------------------------------

// Flattened counter lookup from an obs metrics JSON (or a batch report
// wrapping one under "metrics"); absent counters read as 0, which is what an
// untouched counter would report anyway.
bool load_counters(const std::string& path, std::map<std::string, double>* out) {
  auto doc = abg::util::load_json(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "abg_inspect: %s\n", doc.status().to_string().c_str());
    return false;
  }
  const abg::util::JsonValue* root = &*doc;
  if (const auto* m = root->find("metrics"); m && m->find("counters")) root = m;
  const auto* counters = root->find("counters");
  if (!counters) {
    std::fprintf(stderr, "abg_inspect: %s: no \"counters\" object\n", path.c_str());
    return false;
  }
  for (const auto& [name, v] : counters->members()) {
    if (v.is_number()) (*out)[name] = v.as_double();
  }
  return true;
}

void print_funnel_row(const std::string& key, const Funnel& f) {
  std::printf("%-24s %8" PRIu64 " %10" PRIu64 " %9" PRIu64 " %9" PRIu64 " %9" PRIu64
              " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %12" PRIu64 "\n",
              key.c_str(), f[JournalKind::kSketch], f[JournalKind::kEnumerated],
              f[JournalKind::kCacheHit], f[JournalKind::kEvaluated],
              f[JournalKind::kAbandoned], f[JournalKind::kSelected],
              f[JournalKind::kLbPrune], f[JournalKind::kRowAbandon],
              f[JournalKind::kDtwEval], f.cells);
}

int cmd_funnel(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string job_filter, check_path;
  GroupBy by = GroupBy::kBucket;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--job" && i + 1 < argc) {
      job_filter = argv[++i];
    } else if (flag == "--by" && i + 1 < argc) {
      if (!parse_group_by(argv[++i], &by, /*allow_segment=*/false)) return usage();
    } else if (flag == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      return usage();
    }
  }

  JournalFile jf;
  if (int rc = load(argv[2], &jf); rc != 0) return rc;

  std::map<std::string, Funnel> groups;
  Funnel total;
  for (const auto& r : jf.records) {
    if (!job_filter.empty() && jf.str(r.job) != job_filter) continue;
    groups[group_key(jf, r, by)].add(r);
    total.add(r);
  }

  std::printf("%-24s %8s %10s %9s %9s %9s %8s %8s %8s %8s %12s\n", "group", "sketches",
              "enumerated", "cachehit", "evaluated", "abandoned", "selected", "lbprune",
              "rowabn", "dtweval", "cells");
  for (const auto& [key, f] : groups) print_funnel_row(key, f);
  if (groups.size() > 1) print_funnel_row("TOTAL", total);
  if (jf.dropped > 0) {
    std::printf("note: %" PRIu64 " events dropped at record time (rings full); "
                "totals undercount\n", jf.dropped);
  }

  if (check_path.empty()) return 0;

  // Reconcile against the metrics registry. These identities hold exactly
  // when the journal covered the whole process run at sample_every=1 (the
  // default) and no events were dropped; anything else is an instrumentation
  // regression and fails CI.
  std::map<std::string, double> counters;
  if (!load_counters(check_path, &counters)) {
    return abg::util::exit_code(abg::util::StatusCode::kParseError);
  }
  int mismatches = 0;
  auto check_eq = [&mismatches](const char* what, double journal, double metrics) {
    if (journal == metrics) {
      std::printf("ok       %s: journal %.17g == metrics %.17g\n", what, journal, metrics);
    } else {
      std::printf("MISMATCH %s: journal %.17g != metrics %.17g\n", what, journal, metrics);
      ++mismatches;
    }
  };
  check_eq("enumerated vs synth.handlers_scored",
           static_cast<double>(total[JournalKind::kEnumerated]),
           counters["synth.handlers_scored"]);
  check_eq("cachehit vs synth.cache_hits", static_cast<double>(total[JournalKind::kCacheHit]),
           counters["synth.cache_hits"]);
  check_eq("cachehit+evaluated+abandoned vs enumerated",
           static_cast<double>(total[JournalKind::kCacheHit] + total[JournalKind::kEvaluated] +
                               total[JournalKind::kAbandoned]),
           static_cast<double>(total[JournalKind::kEnumerated]));
  if (jf.dropped > 0) {
    std::printf("MISMATCH dropped events: %" PRIu64 " (funnel is incomplete)\n", jf.dropped);
    ++mismatches;
  }
  return mismatches > 0 ? 1 : 0;
}

// --- why ---------------------------------------------------------------------

int cmd_why(int argc, char** argv) {
  if (argc != 4) return usage();
  char* end = nullptr;
  const std::uint64_t fp = std::strtoull(argv[3], &end, 0);
  if (end == argv[3] || *end != '\0' || fp == 0) {
    std::fprintf(stderr, "abg_inspect: bad fingerprint '%s' (decimal or 0x hex)\n", argv[3]);
    return usage();
  }
  JournalFile jf;
  if (int rc = load(argv[2], &jf); rc != 0) return rc;

  std::vector<const JournalRecord*> events;
  for (const auto& r : jf.records) {
    if (r.candidate == fp) events.push_back(&r);
  }
  if (events.empty()) {
    std::printf("no events for candidate %#" PRIx64 " (sampled out, or wrong journal?)\n", fp);
    return 1;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const JournalRecord* a, const JournalRecord* b) {
                     return a->ts_ns < b->ts_ns;
                   });
  std::printf("candidate %#" PRIx64 ": %zu events\n", fp, events.size());
  for (const auto* r : events) {
    std::printf("  %12.3fms %-11s job=%s bucket=%s iter=%u", r->ts_ns / 1e6,
                abg::obs::journal_kind_name(static_cast<JournalKind>(r->kind)),
                jf.str(r->job).empty() ? "-" : jf.str(r->job).c_str(),
                jf.str(r->bucket).empty() ? "-" : jf.str(r->bucket).c_str(), r->iter);
    if (r->segment != abg::obs::kJournalNoSegment) std::printf(" seg=%u", r->segment);
    if (std::isfinite(r->distance)) std::printf(" dist=%.6g", r->distance);
    if (r->cells > 0) std::printf(" cells=%" PRIu64, r->cells);
    if (r->detail != 0) std::printf("\n      -> %s", jf.str(r->detail).c_str());
    if (r->flags & abg::obs::kJournalFinal) std::printf("  [run winner]");
    std::printf("\n");
  }
  return 0;
}

// --- near-misses -------------------------------------------------------------

int cmd_near_misses(int argc, char** argv) {
  if (argc < 3) return usage();
  long top = 10;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--top" && i + 1 < argc) {
      top = std::strtol(argv[++i], nullptr, 10);
      if (top <= 0) return usage();
    } else {
      return usage();
    }
  }
  JournalFile jf;
  if (int rc = load(argv[2], &jf); rc != 0) return rc;

  const JournalRecord* winner = find_winner(jf);
  if (winner == nullptr) {
    std::printf("no selection events in journal (run did not complete?)\n");
    return 1;
  }

  // Best finite distance each candidate ever achieved, over its terminal
  // events. Cache hits count: the candidate was that close even if the
  // number came from the memo table.
  struct Best {
    double distance = 0.0;
    const JournalRecord* rec = nullptr;
  };
  std::map<std::uint64_t, Best> best;
  for (const auto& r : jf.records) {
    if (r.candidate == 0 || !std::isfinite(r.distance)) continue;
    if (!is_kind(r, JournalKind::kEvaluated) && !is_kind(r, JournalKind::kCacheHit)) continue;
    auto [it, fresh] = best.try_emplace(r.candidate, Best{r.distance, &r});
    if (!fresh && r.distance < it->second.distance) it->second = Best{r.distance, &r};
  }
  best.erase(winner->candidate);

  std::vector<std::pair<std::uint64_t, Best>> ranked(best.begin(), best.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.distance < b.second.distance;
  });
  if (ranked.size() > static_cast<std::size_t>(top)) ranked.resize(top);

  std::printf("winner    %#018" PRIx64 " distance %.6g (%s)\n", winner->candidate,
              winner->distance, jf.str(winner->detail).c_str());
  std::printf("%-4s %-20s %12s %12s %-16s %s\n", "#", "candidate", "distance", "gap", "sketch",
              "bucket");
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const auto& [fp, b] = ranked[i];
    std::printf("%-4zu %#018" PRIx64 " %12.6g %+12.6g %016" PRIx64 " %s\n", i + 1, fp,
                b.distance, b.distance - winner->distance, b.rec->sketch,
                jf.str(b.rec->bucket).c_str());
  }
  return 0;
}

// --- hotspots ----------------------------------------------------------------

int cmd_hotspots(int argc, char** argv) {
  if (argc < 3) return usage();
  GroupBy by = GroupBy::kBucket;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--by" && i + 1 < argc) {
      if (!parse_group_by(argv[++i], &by, /*allow_segment=*/true)) return usage();
    } else {
      return usage();
    }
  }
  if (by != GroupBy::kBucket && by != GroupBy::kSegment && by != GroupBy::kKernel) return usage();

  JournalFile jf;
  if (int rc = load(argv[2], &jf); rc != 0) return rc;

  struct Spot {
    std::uint64_t cells = 0, evals = 0, row_abandons = 0, lb_prunes = 0, keogh_prunes = 0;
  };
  std::map<std::string, Spot> spots;
  std::uint64_t total_cells = 0;
  for (const auto& r : jf.records) {
    const bool costed = is_kind(r, JournalKind::kDtwEval) || is_kind(r, JournalKind::kRowAbandon);
    if (!costed && !is_kind(r, JournalKind::kLbPrune) &&
        !is_kind(r, JournalKind::kLbKeoghPrune)) {
      continue;
    }
    Spot& s = spots[group_key(jf, r, by)];
    if (is_kind(r, JournalKind::kDtwEval)) ++s.evals;
    if (is_kind(r, JournalKind::kRowAbandon)) ++s.row_abandons;
    if (is_kind(r, JournalKind::kLbPrune)) ++s.lb_prunes;
    if (is_kind(r, JournalKind::kLbKeoghPrune)) ++s.keogh_prunes;
    if (costed) {
      s.cells += r.cells;
      total_cells += r.cells;
    }
  }

  std::vector<std::pair<std::string, Spot>> ranked(spots.begin(), spots.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second.cells > b.second.cells; });
  std::printf("%-24s %14s %7s %9s %9s %9s %9s\n", "group", "cells", "share", "dtwevals",
              "rowabn", "lbprune", "lbkeogh");
  for (const auto& [key, s] : ranked) {
    const double share = total_cells > 0 ? 100.0 * s.cells / total_cells : 0.0;
    std::printf("%-24s %14" PRIu64 " %6.2f%% %9" PRIu64 " %9" PRIu64 " %9" PRIu64 " %9" PRIu64
                "\n",
                key.c_str(), s.cells, share, s.evals, s.row_abandons, s.lb_prunes,
                s.keogh_prunes);
  }
  return 0;
}

// --- diff --------------------------------------------------------------------

int cmd_diff(int argc, char** argv) {
  if (argc != 4) return usage();
  JournalFile a, b;
  if (int rc = load(argv[2], &a); rc != 0) return rc;
  if (int rc = load(argv[3], &b); rc != 0) return rc;

  Funnel fa, fb;
  for (const auto& r : a.records) fa.add(r);
  for (const auto& r : b.records) fb.add(r);

  std::printf("%-12s %14s %14s %14s\n", "kind", "a", "b", "delta");
  for (std::size_t k = 0; k < abg::obs::kJournalKindCount; ++k) {
    std::printf("%-12s %14" PRIu64 " %14" PRIu64 " %+14" PRId64 "\n",
                abg::obs::journal_kind_name(static_cast<JournalKind>(k)), fa.by_kind[k],
                fb.by_kind[k],
                static_cast<std::int64_t>(fb.by_kind[k]) - static_cast<std::int64_t>(fa.by_kind[k]));
  }
  std::printf("%-12s %14" PRIu64 " %14" PRIu64 " %+14" PRId64 "\n", "cells", fa.cells, fb.cells,
              static_cast<std::int64_t>(fb.cells) - static_cast<std::int64_t>(fa.cells));

  const JournalRecord* wa = find_winner(a);
  const JournalRecord* wb = find_winner(b);
  if (wa == nullptr || wb == nullptr) {
    std::printf("DIFFER: %s journal has no selection events\n",
                wa == nullptr ? (wb == nullptr ? "neither" : "first") : "second");
    return 1;
  }
  const std::string& ha = a.str(wa->detail);
  const std::string& hb = b.str(wb->detail);
  std::printf("a selected: %s (distance %.6g, candidate %#" PRIx64 ")\n", ha.c_str(),
              wa->distance, wa->candidate);
  std::printf("b selected: %s (distance %.6g, candidate %#" PRIx64 ")\n", hb.c_str(),
              wb->distance, wb->candidate);
  if (ha != hb) {
    std::printf("DIFFER: runs selected different winners\n");
    return 1;
  }
  std::printf("winners agree\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "funnel") return cmd_funnel(argc, argv);
  if (cmd == "why") return cmd_why(argc, argv);
  if (cmd == "near-misses") return cmd_near_misses(argc, argv);
  if (cmd == "hotspots") return cmd_hotspots(argc, argv);
  if (cmd == "diff") return cmd_diff(argc, argv);
  return usage();
}
