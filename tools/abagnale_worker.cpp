// abagnale_worker: one shard of a distributed refinement search (ISSUE 9).
//
//   abagnale_worker [--port P] [--port-file FILE] [--metrics-out FILE]
//
// Serves the /shard/* worker protocol (see src/dist/worker.hpp) plus
// /healthz and /metrics on 127.0.0.1:PORT (default: an ephemeral port).
// With --port-file the actually-bound port is written there once listening,
// so a spawner (abagnale_serve --workers N) can discover it race-free.
//
// The process exits on POST /shard/quit or SIGTERM/SIGINT; a worker holds
// no durable state (the coordinator owns checkpoints), so any exit path —
// including kill -9, which the dist-smoke CI job inflicts on purpose — only
// costs the in-flight pass, which the coordinator replays elsewhere.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <unistd.h>

#include "api/version.hpp"
#include "dist/worker.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/status_server.hpp"
#include "util/durable_io.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--port P] [--port-file FILE] [--metrics-out FILE]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace abg;

  int port = 0;  // ephemeral by default; workers are normally spawned, not addressed
  std::string port_file;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atoi(next("--port"));
    } else if (arg == "--port-file") {
      port_file = next("--port-file");
    } else if (arg == "--metrics-out") {
      metrics_out = next("--metrics-out");
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (!util::log_level_from_env()) util::set_log_level(util::LogLevel::kInfo);
  obs::set_report_meta("api_version", ABG_API_VERSION);
  // Pre-create the series the dist-smoke CI gate reads, so a worker that
  // never adopted anything still exports them at 0.
  obs::counter("dist.worker.passes");
  obs::counter("dist.worker.buckets_adopted");

  dist::Worker worker;
  obs::StatusServer server;
  worker.mount(server);
  std::string err;
  if (!server.start(static_cast<std::uint16_t>(port), &err)) {
    std::fprintf(stderr, "abagnale_worker: cannot listen: %s\n", err.c_str());
    return util::exit_code(util::StatusCode::kIoError);
  }
  if (!port_file.empty()) {
    if (auto st = util::atomic_write_file(port_file, std::to_string(server.port()) + "\n",
                                          /*durable=*/false);
        !st.is_ok()) {
      std::fprintf(stderr, "abagnale_worker: cannot write %s: %s\n", port_file.c_str(),
                   st.to_string().c_str());
      return util::exit_code(st.code());
    }
  }
  std::printf("abagnale_worker: listening on 127.0.0.1:%u (pid %d)\n", server.port(),
              static_cast<int>(::getpid()));
  std::fflush(stdout);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  while (g_stop == 0 && !worker.quit_requested()) {
    ::usleep(50 * 1000);
  }

  server.stop();
  if (!metrics_out.empty() && !obs::write_metrics_json(metrics_out)) {
    std::fprintf(stderr, "abagnale_worker: cannot write %s\n", metrics_out.c_str());
    return util::exit_code(util::StatusCode::kIoError);
  }
  std::printf("abagnale_worker: bye\n");
  return 0;
}
