// abg_report — run-to-run regression reports over obs metrics JSON (ISSUE 5).
//
// Compares two metrics reports (obs::metrics_json() output, or any document
// embedding one under a top-level "metrics" member, e.g. a batch report) and
// gates selected series against configurable thresholds:
//
//   abg_report baseline.json current.json
//       --require distance.dtw_evals
//       --gate 'synth.*=10'
//       --gate-ratio distance.dtw_cells/distance.dtw_evals=2
//
// Metrics are flattened to scalar series first: counters keep their name,
// gauges contribute <name>.last and <name>.max, histograms contribute
// <name>.count, <name>.sum and <name>.mean. Labeled series keep their
// rendered key (name{k="v"}).
//
// Gate semantics (regressions fail, improvements pass):
//   --gate NAME[=PCT]       breach when current > baseline by more than PCT%
//                           (default 5). A trailing '*' prefix-matches every
//                           series present in either report. A zero baseline
//                           breaches on any nonzero current (there is no
//                           percentage to grow by).
//   --gate-ratio A/B[=PCT]  breach when current(A)/current(B) drifts more
//                           than PCT% from the baseline ratio, in either
//                           direction. This is the stable way to gate work
//                           counters whose absolute values scale with
//                           benchmark iteration counts.
//   --require NAME[=VALUE]  breach when NAME is missing from the current
//                           report (a silently vanished series usually means
//                           an instrumentation regression, not an
//                           optimization). With =VALUE, additionally breach
//                           unless the current value equals VALUE exactly —
//                           e.g. --require obs.series_overflow=0 turns silent
//                           label-cardinality overflow into a gate failure.
//
// Reports stamped with a "meta" object (e.g. simd_kernel, recorded by
// distance::resolve_simd) are additionally checked for like-for-like
// comparison: when both sides carry meta.simd_kernel and they disagree, that
// is a breach — a DTW work-counter drift measured across different kernels is
// noise, not a regression. --allow-cross-kernel waives this (for the
// deliberate scalar-vs-SIMD comparison artifact in CI).
//
// Exit: 0 all gates clean, 1 at least one breach, otherwise the usual error
// classes (3 parse, 7 io, 9 bad arguments).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "util/json_parse.hpp"
#include "util/status.hpp"

namespace {

using abg::util::JsonValue;

int usage() {
  std::fprintf(stderr,
               "usage: abg_report <baseline.json> <current.json> [options]\n"
               "  --gate NAME[=PCT]       fail when current exceeds baseline by > PCT%% "
               "(default 5; trailing '*' = prefix)\n"
               "  --gate-ratio A/B[=PCT]  fail when the A/B ratio drifts > PCT%% from baseline\n"
               "  --require NAME[=VALUE]  fail when NAME is absent from current (or, with\n"
               "                          =VALUE, when its value is not exactly VALUE)\n"
               "  --allow-cross-kernel    do not fail when the reports' meta.simd_kernel differ\n"
               "  --list                  print the flattened series of both reports\n");
  return abg::util::exit_code(abg::util::StatusCode::kInvalidArgument);
}

// Flattened view: metric series name -> scalar value.
using Flat = std::map<std::string, double>;

// Descend into a "metrics" member when the document is a wrapper (batch
// report); otherwise treat the document itself as the metrics object.
const JsonValue* metrics_root(const JsonValue& doc) {
  if (const JsonValue* m = doc.find("metrics"); m && m->find("counters")) return m;
  return doc.find("counters") ? &doc : nullptr;
}

// meta.simd_kernel of a report, or "" when the report predates meta stamping.
std::string meta_kernel(const JsonValue& doc) {
  const JsonValue* root = metrics_root(doc);
  if (root == nullptr) return "";
  const JsonValue* meta = root->find("meta");
  if (meta == nullptr) return "";
  const JsonValue* kernel = meta->find("simd_kernel");
  if (kernel == nullptr || !kernel->is_string()) return "";
  return kernel->as_string();
}

bool flatten(const JsonValue& doc, Flat* out, std::string* err) {
  const JsonValue* root = metrics_root(doc);
  if (root == nullptr) {
    *err = "no metrics object found (expected a top-level \"counters\" or \"metrics\")";
    return false;
  }
  if (const JsonValue* counters = root->find("counters")) {
    for (const auto& [name, v] : counters->members()) {
      if (v.is_number()) (*out)[name] = v.as_double();
    }
  }
  if (const JsonValue* gauges = root->find("gauges")) {
    for (const auto& [name, v] : gauges->members()) {
      if (const JsonValue* last = v.find("last"); last && last->is_number()) {
        (*out)[name + ".last"] = last->as_double();
      }
      if (const JsonValue* max = v.find("max"); max && max->is_number()) {
        (*out)[name + ".max"] = max->as_double();
      }
    }
  }
  if (const JsonValue* hists = root->find("histograms")) {
    for (const auto& [name, v] : hists->members()) {
      const JsonValue* count = v.find("count");
      const JsonValue* sum = v.find("sum");
      if (count && count->is_number()) (*out)[name + ".count"] = count->as_double();
      if (sum && sum->is_number()) (*out)[name + ".sum"] = sum->as_double();
      if (count && sum && count->is_number() && sum->is_number() && count->as_double() > 0) {
        (*out)[name + ".mean"] = sum->as_double() / count->as_double();
      }
    }
  }
  return true;
}

struct Gate {
  std::string pattern;  // exact name, or prefix when trailing '*'
  double pct = 5.0;
};

struct RatioGate {
  std::string num, den;
  double pct = 5.0;
};

struct Require {
  std::string name;
  std::optional<double> value;  // nullopt = presence-only
};

// "NAME[=VALUE]": the tail after the last '=' counts as a value only when it
// parses fully as a number — series names can themselves contain '=' inside
// label blocks (name{k="v"}), and those must stay part of the name.
Require parse_require(const std::string& arg) {
  Require r{arg, std::nullopt};
  const std::size_t eq = arg.rfind('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size()) return r;
  const std::string tail = arg.substr(eq + 1);
  char* end = nullptr;
  const double v = std::strtod(tail.c_str(), &end);
  if (end != nullptr && *end == '\0') {
    r.name = arg.substr(0, eq);
    r.value = v;
  }
  return r;
}

// Split "NAME[=PCT]"; false on a malformed percentage.
bool split_threshold(const std::string& arg, std::string* name, double* pct) {
  const std::size_t eq = arg.rfind('=');
  if (eq == std::string::npos) {
    *name = arg;
    return !name->empty();
  }
  char* end = nullptr;
  const std::string num = arg.substr(eq + 1);
  const double v = std::strtod(num.c_str(), &end);
  if (num.empty() || end == nullptr || *end != '\0' || !(v >= 0)) return false;
  *name = arg.substr(0, eq);
  *pct = v;
  return !name->empty();
}

bool matches(const std::string& pattern, const std::string& name) {
  if (!pattern.empty() && pattern.back() == '*') {
    return name.compare(0, pattern.size() - 1, pattern, 0, pattern.size() - 1) == 0;
  }
  return name == pattern;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::vector<Gate> gates;
  std::vector<RatioGate> ratio_gates;
  std::vector<Require> required;
  bool list = false;
  bool allow_cross_kernel = false;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--list") {
      list = true;
    } else if (flag == "--allow-cross-kernel") {
      allow_cross_kernel = true;
    } else if (flag == "--require" && i + 1 < argc) {
      required.push_back(parse_require(argv[++i]));
    } else if (flag == "--gate" && i + 1 < argc) {
      Gate g;
      if (!split_threshold(argv[++i], &g.pattern, &g.pct)) return usage();
      gates.push_back(std::move(g));
    } else if (flag == "--gate-ratio" && i + 1 < argc) {
      RatioGate g;
      std::string spec;
      if (!split_threshold(argv[++i], &spec, &g.pct)) return usage();
      const std::size_t slash = spec.find('/');
      if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) return usage();
      g.num = spec.substr(0, slash);
      g.den = spec.substr(slash + 1);
      ratio_gates.push_back(std::move(g));
    } else {
      return usage();
    }
  }

  Flat base, cur;
  std::string base_kernel, cur_kernel;
  for (const auto& [path, flat, kernel] :
       {std::tuple{argv[1], &base, &base_kernel}, std::tuple{argv[2], &cur, &cur_kernel}}) {
    auto doc = abg::util::load_json(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "abg_report: %s\n", doc.status().to_string().c_str());
      return abg::util::exit_code(doc.status().code());
    }
    std::string err;
    if (!flatten(*doc, flat, &err)) {
      std::fprintf(stderr, "abg_report: %s: %s\n", path, err.c_str());
      return abg::util::exit_code(abg::util::StatusCode::kParseError);
    }
    *kernel = meta_kernel(*doc);
  }

  if (list) {
    for (const auto& [name, v] : cur) {
      const auto it = base.find(name);
      std::printf("%-48s %.17g", name.c_str(), v);
      if (it != base.end()) std::printf("  (baseline %.17g)", it->second);
      std::printf("\n");
    }
  }

  int checked = 0;
  int breaches = 0;
  auto breach = [&breaches](const char* fmt, auto... args) {
    std::printf("BREACH ");
    std::printf(fmt, args...);
    std::printf("\n");
    ++breaches;
  };

  // Like-for-like check: comparing DTW work counters measured under different
  // kernels is meaningless, so a kernel mismatch is itself a breach unless the
  // caller says the comparison is deliberately cross-kernel. A report with no
  // stamp (predates meta, or never touched the distance layer) is exempt.
  if (!base_kernel.empty() && !cur_kernel.empty() && base_kernel != cur_kernel) {
    ++checked;
    if (allow_cross_kernel) {
      std::printf("ok     meta.simd_kernel: %s -> %s (--allow-cross-kernel)\n",
                  base_kernel.c_str(), cur_kernel.c_str());
    } else {
      breach("meta.simd_kernel: baseline ran '%s' but current ran '%s' (pass "
             "--allow-cross-kernel if intended)",
             base_kernel.c_str(), cur_kernel.c_str());
    }
  }

  for (const auto& req : required) {
    ++checked;
    const auto it = cur.find(req.name);
    if (it == cur.end()) {
      breach("%s: required series missing from current report", req.name.c_str());
    } else if (req.value && it->second != *req.value) {
      breach("%s: required value %.17g, got %.17g", req.name.c_str(), *req.value, it->second);
    } else if (req.value) {
      std::printf("ok     %s: %.17g (exact match)\n", req.name.c_str(), it->second);
    } else {
      std::printf("ok     %s: present (%.17g)\n", req.name.c_str(), it->second);
    }
  }

  for (const auto& g : gates) {
    // Walk the union of both reports so a series that newly appeared (or
    // vanished) under a wildcard is still surfaced.
    std::map<std::string, char> names;
    for (const auto& [n, _] : base) {
      if (matches(g.pattern, n)) names[n] |= 1;
    }
    for (const auto& [n, _] : cur) {
      if (matches(g.pattern, n)) names[n] |= 2;
    }
    if (names.empty()) {
      breach("--gate %s matched no series in either report", g.pattern.c_str());
      ++checked;
      continue;
    }
    for (const auto& [name, where] : names) {
      ++checked;
      if (where == 1) {
        breach("%s: present in baseline, missing from current", name.c_str());
        continue;
      }
      if (where == 2) {
        // New series can't regress against anything; report informationally.
        std::printf("ok     %s: new series (no baseline), %.17g\n", name.c_str(), cur.at(name));
        continue;
      }
      const double b = base.at(name);
      const double c = cur.at(name);
      if (b == 0) {
        if (c != 0) {
          breach("%s: baseline 0 -> %.17g", name.c_str(), c);
        } else {
          std::printf("ok     %s: 0 -> 0\n", name.c_str());
        }
        continue;
      }
      const double growth_pct = (c - b) / b * 100.0;
      if (growth_pct > g.pct) {
        breach("%s: %.17g -> %.17g (%+.2f%%, limit +%.2f%%)", name.c_str(), b, c, growth_pct,
               g.pct);
      } else {
        std::printf("ok     %s: %.17g -> %.17g (%+.2f%%, limit +%.2f%%)\n", name.c_str(), b, c,
                    growth_pct, g.pct);
      }
    }
  }

  for (const auto& g : ratio_gates) {
    ++checked;
    const std::string label = g.num + "/" + g.den;
    const bool have = base.count(g.num) && base.count(g.den) && cur.count(g.num) &&
                      cur.count(g.den);
    if (!have) {
      breach("%s: series missing from one of the reports", label.c_str());
      continue;
    }
    if (base.at(g.den) == 0 || cur.at(g.den) == 0) {
      breach("%s: zero denominator", label.c_str());
      continue;
    }
    const double rb = base.at(g.num) / base.at(g.den);
    const double rc = cur.at(g.num) / cur.at(g.den);
    const double drift_pct = (rc - rb) / rb * 100.0;
    if (std::fabs(drift_pct) > g.pct) {
      breach("%s: ratio %.6g -> %.6g (%+.2f%%, limit ±%.2f%%)", label.c_str(), rb, rc, drift_pct,
             g.pct);
    } else {
      std::printf("ok     %s: ratio %.6g -> %.6g (%+.2f%%, limit ±%.2f%%)\n", label.c_str(), rb,
                  rc, drift_pct, g.pct);
    }
  }

  std::printf("abg_report: %d gate%s checked, %d breach%s\n", checked, checked == 1 ? "" : "s",
              breaches, breaches == 1 ? "" : "es");
  return breaches > 0 ? 1 : 0;
}
