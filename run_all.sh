#!/usr/bin/env bash
# Regenerates test_output.txt and bench_output.txt (the recorded runs), then
# re-runs the tier-1 tests under AddressSanitizer so the obs registry
# atomics, trace recorder, and thread-pool instrumentation are exercised
# under ASan on every recorded run.
#
# Failure handling: `set -o pipefail` makes a failing ctest/bench propagate
# through the `tee` pipelines, and `set -e` stops the script there — the
# final ALL-RUNS-COMPLETE marker prints only when every stage passed.
set -euo pipefail
cd /root/repo

ctest --test-dir build --output-on-failure 2>&1 | tee /root/repo/test_output.txt

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then "$b"; fi
  done
} 2>&1 | tee /root/repo/bench_output.txt

cmake -B build-asan -S . -DABG_SANITIZE=address
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j 2>&1 | tee /root/repo/asan_output.txt
echo "ALL-RUNS-COMPLETE"
