#!/bin/bash
# Regenerates test_output.txt and bench_output.txt (the recorded runs).
cd /root/repo
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then "$b"; fi
done 2>&1 | tee /root/repo/bench_output.txt
echo "ALL-RUNS-COMPLETE"
