#!/bin/bash
# Regenerates test_output.txt and bench_output.txt (the recorded runs), then
# re-runs the tier-1 tests under AddressSanitizer so the obs registry
# atomics, trace recorder, and thread-pool instrumentation are exercised
# under ASan on every recorded run.
cd /root/repo
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then "$b"; fi
done 2>&1 | tee /root/repo/bench_output.txt

cmake -B build-asan -S . -DABG_SANITIZE=address
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j 2>&1 | tee /root/repo/asan_output.txt
echo "ALL-RUNS-COMPLETE"
