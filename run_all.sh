#!/usr/bin/env bash
# Regenerates test_output.txt and bench_output.txt (the recorded runs), then
# re-runs the tier-1 tests under AddressSanitizer so the obs registry
# atomics, trace recorder, and thread-pool instrumentation are exercised
# under ASan on every recorded run, plus a CLI smoke pass that exercises the
# per-class exit codes end to end.
#
# Failure handling: `set -o pipefail` makes a failing ctest/bench propagate
# through the `tee` pipelines; every stage runs through run_stage(), which
# decodes the CLI's error taxonomy (status.hpp) into a readable class name
# before stopping the script — the final ALL-RUNS-COMPLETE marker prints
# only when every stage passed.
set -uo pipefail
cd /root/repo

# DTW kernel tier for this recorded run. The caller's ABG_SIMD is honored by
# every stage below (the binaries resolve it themselves); the resolved kernel
# is stamped into each run's metrics report ("meta" -> "simd_kernel"), so the
# recorded outputs are never silently cross-kernel. Only the perf-report
# stage pins scalar, because the committed baseline was recorded on the
# scalar oracle.
echo "ABG_SIMD=${ABG_SIMD:-auto} (DTW kernel tier; see src/distance/simd.hpp)"

# Map the abagnale_cli/status.hpp exit codes to their error classes.
decode_exit_class() {
  case "$1" in
    0) echo "ok" ;;
    1) echo "unknown-error" ;;
    2) echo "usage-error" ;;
    3) echo "parse-error" ;;
    4) echo "invalid-trace" ;;
    5) echo "timeout" ;;
    6) echo "cancelled" ;;
    7) echo "io-error" ;;
    8) echo "numeric-error" ;;
    9) echo "invalid-argument" ;;
    *) echo "exit-$1" ;;
  esac
}

# run_stage <name> <cmd...>: run the stage, and on failure report which
# error class the exit code maps to before aborting the script.
run_stage() {
  local name="$1"
  shift
  "$@"
  local rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "STAGE-FAILED: $name (exit $rc: $(decode_exit_class "$rc"))" >&2
    exit "$rc"
  fi
}

run_tests() { ctest --test-dir build --output-on-failure 2>&1 | tee /root/repo/test_output.txt; }
run_stage "tier1-tests" run_tests

run_benches() {
  {
    for b in build/bench/*; do
      if [ -x "$b" ] && [ -f "$b" ]; then "$b" || return $?; fi
    done
  } 2>&1 | tee /root/repo/bench_output.txt
}
run_stage "benchmarks" run_benches

# Run-to-run perf gate: the DTW kernel alone (so the cells/evals ratio is
# invariant to benchmark iteration counts) against the committed baseline.
# A drifting ratio means the kernel started doing different work per eval —
# abg_report exits 1 and the stage fails. ABG_SIMD is pinned to scalar to
# match the baseline's recorded kernel; abg_report would (correctly) breach
# on a cross-kernel comparison otherwise.
perf_report() {
  local tmp
  tmp="$(mktemp -d)"
  (cd "$tmp" && ABG_SIMD=scalar /root/repo/build/bench/bench_micro \
      --benchmark_filter='^BM_Dtw/1024$' >/dev/null) || return $?
  ./build/tools/abg_report BENCH_baseline.json "$tmp/bench_micro.metrics.json" \
      --require distance.dtw_evals \
      --require obs.series_overflow=0 \
      --gate-ratio distance.dtw_cells/distance.dtw_evals=2 \
      2>&1 | tee /root/repo/perf_report.txt
  local rc=$?
  rm -rf "$tmp"
  return "$rc"
}
run_stage "perf-report" perf_report

# CLI smoke: collect a short trace and score the known handler against it,
# so the Status-based I/O, validation, and exit-code plumbing all run end to
# end on every recorded run.
cli_smoke() {
  local tmp
  tmp="$(mktemp -d)"
  ./build/examples/abagnale_cli collect reno "$tmp/reno.csv" 10 40 5 || return $?
  ./build/examples/abagnale_cli match reno "$tmp/reno.csv" || return $?
  # A missing input must exit with the io-error class (7), not a generic 1.
  ./build/examples/abagnale_cli classify "$tmp/not_there.csv"
  local rc=$?
  rm -rf "$tmp"
  if [ "$rc" -ne 7 ]; then
    echo "expected io-error exit (7) for a missing trace, got $rc" >&2
    return 1
  fi
  return 0
}
run_stage "cli-smoke" cli_smoke

# Sweep stage, batch mode: the multi-CCA sweep runs as ONE process through
# `abagnale_cli --batch` (shared scoring pool, shared eval cache, per-job
# exit classes) instead of a shell loop of sequential synthesize calls. The
# consolidated report lands in batch_report.json.
batch_sweep() {
  local tmp
  tmp="$(mktemp -d)"
  ./build/examples/abagnale_cli collect reno "$tmp/reno.csv" 10 40 8 || return $?
  ./build/examples/abagnale_cli collect cubic "$tmp/cubic.csv" 10 40 8 || return $?
  cat > "$tmp/sweep.json" <<EOF
{
  "threads": 4,
  "max_concurrent_jobs": 2,
  "report": "/root/repo/batch_report.json",
  "jobs": [
    {"name": "reno", "traces": ["$tmp/reno.csv"], "dsl": "reno",
     "timeout_s": 90, "max_iterations": 2, "initial_samples": 4},
    {"name": "cubic", "traces": ["$tmp/cubic.csv"], "dsl": "cubic",
     "timeout_s": 90, "max_iterations": 2, "initial_samples": 4}
  ]
}
EOF
  # --status-port 0 binds an ephemeral localhost port: the live endpoint is
  # exercised (start, serve thread, clean shutdown) on every recorded run;
  # the trace file records one Perfetto lane per job, and the search journal
  # records every candidate's lifecycle (split per job at exit).
  ./build/examples/abagnale_cli --batch "$tmp/sweep.json" \
      --status-port 0 --trace-out /root/repo/batch_trace.json \
      --journal-out /root/repo/batch_search.journal \
      2>&1 | tee /root/repo/batch_output.txt
  local rc=$?
  # The journal must be queryable whatever the sweep's outcome (a timeout
  # partial still journals everything it did). No --check here: the strict
  # funnel-vs-metrics reconciliation runs in the CI bench-smoke job.
  ./build/tools/abg_inspect funnel /root/repo/batch_search.journal || return $?
  # Per-kernel cost attribution: which DTW kernel burned the cells this run.
  ./build/tools/abg_inspect hotspots /root/repo/batch_search.journal --by kernel || return $?
  # A manifest with an unknown key must be rejected with invalid-argument (9)
  # before any job runs.
  echo '{"jobs": [{"traces": ["x.csv"], "timout_s": 5}]}' > "$tmp/typo.json"
  ./build/examples/abagnale_cli --batch "$tmp/typo.json"
  local typo_rc=$?
  rm -rf "$tmp"
  if [ "$typo_rc" -ne 9 ]; then
    echo "expected invalid-argument exit (9) for a typoed manifest, got $typo_rc" >&2
    return 1
  fi
  # Accept timeout (5) for the real sweep: budgets are tight on slow runners,
  # and a best-so-far partial is a valid recorded outcome there.
  if [ "$rc" -ne 0 ] && [ "$rc" -ne 5 ]; then return "$rc"; fi
  return 0
}
run_stage "batch-sweep" batch_sweep

asan_pass() {
  cmake -B build-asan -S . -DABG_SANITIZE=address || return $?
  cmake --build build-asan -j || return $?
  ctest --test-dir build-asan --output-on-failure -j 2>&1 | tee /root/repo/asan_output.txt
}
run_stage "asan-tests" asan_pass

echo "ALL-RUNS-COMPLETE"
