// Distance-metric playground (§4.3): collect traces from two CCAs, replay a
// few candidate handlers over them, and print how each metric ranks the
// candidates. Useful for building intuition about why the pipeline uses DTW:
// alignment-based distance forgives temporal shift (BBR pulses), while
// point-wise metrics punish it.
//
// Build & run:  ./build/examples/distance_playground [cca]
#include <cstdio>

#include "dsl/known_handlers.hpp"
#include "net/simulator.hpp"
#include "synth/replay.hpp"

int main(int argc, char** argv) {
  using namespace abg;
  setvbuf(stdout, nullptr, _IONBF, 0);
  const std::string cca = argc > 1 ? argv[1] : "bbr";

  trace::Environment env;
  env.bandwidth_bps = 10e6;
  env.rtt_s = 0.06;
  env.duration_s = 20.0;
  env.seed = 99;
  auto t = trace::trim_warmup(net::run_connection(cca, env), 2.0);
  auto segs = trace::segment_all({t}, 20);
  if (segs.empty()) {
    std::printf("no segments\n");
    return 1;
  }
  // Longest segment.
  std::size_t pick = 0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (segs[i].samples.size() > segs[pick].samples.size()) pick = i;
  }
  const auto& seg = segs[pick];
  std::printf("CCA %s, segment of %zu ACKs under %s\n\n", cca.c_str(), seg.samples.size(),
              env.label().c_str());

  // Candidate handlers: one per family.
  struct Candidate {
    const char* name;
    dsl::ExprPtr handler;
  };
  std::vector<Candidate> candidates;
  for (const char* name : {"reno", "vegas", "bbr", "cubic"}) {
    candidates.push_back({name, dsl::known_handlers(name).fine_tuned});
  }
  candidates.push_back(
      {"flat-50pkt", dsl::mul(dsl::constant(50.0), dsl::sig(dsl::Signal::kMss))});

  std::printf("%-12s", "handler");
  for (auto m : distance::all_metrics()) std::printf(" %12s", distance::metric_name(m));
  std::printf("\n");
  for (const auto& c : candidates) {
    std::printf("%-12s", c.name);
    for (auto m : distance::all_metrics()) {
      std::printf(" %12.3f", synth::segment_distance(*c.handler, seg, m));
    }
    std::printf("\n");
  }
  std::printf("\nLower is better; each column is one metric's ranking of the candidates.\n"
              "Note how the %s row wins under DTW, and how rankings shift under the\n"
              "point-wise metrics — the effect Figure 3 quantifies.\n",
              cca.c_str());
  return 0;
}
