// Quickstart: reverse-engineer TCP Reno end-to-end in ~a minute.
//
//   1. Collect packet traces of the unknown CCA in a few simulated network
//      environments (in a real deployment, these come from pcaps of a server
//      under test; here the built-in testbed plays that role).
//   2. Hand the traces to the Abagnale pipeline.
//   3. Read off the synthesized cwnd-on-ack handler expression.
//
// Build & run:  ./build/examples/quickstart [cca-name]
#include <cstdio>

#include "core/abagnale.hpp"
#include "net/simulator.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace abg;
  setvbuf(stdout, nullptr, _IONBF, 0);
  util::set_log_level(util::LogLevel::kInfo);  // watch the refinement loop

  const std::string cca = argc > 1 ? argv[1] : "reno";
  std::printf("== collecting traces for '%s' across the testbed sweep ==\n", cca.c_str());
  auto envs = net::default_environments(/*count=*/3, /*seed=*/42);
  for (auto& e : envs) e.duration_s = 15.0;
  auto traces = net::collect_traces(cca, envs);
  for (const auto& t : traces) {
    std::printf("  %-32s %6zu ACK samples\n", t.env.label().c_str(), t.samples.size());
  }

  std::printf("\n== running the Abagnale pipeline ==\n");
  core::PipelineOptions opts;
  // Keep the search small for a quickstart; see bench/ for paper-scale runs.
  opts.synth.initial_samples = 8;
  opts.synth.concretize_budget = 24;
  opts.synth.max_depth = 3;
  opts.synth.max_nodes = 7;
  opts.synth.max_holes = 2;
  opts.synth.timeout_s = 90.0;
  core::Abagnale pipeline(opts);
  auto result = pipeline.run(traces);

  std::printf("\n== result ==\n");
  std::printf("classifier label : %s\n", result.classification.label.c_str());
  std::printf("sub-DSL searched : %s\n", result.dsl_name.c_str());
  std::printf("trace segments   : %zu\n", result.segments_total);
  std::printf("handlers scored  : %zu\n", result.synthesis.total_handlers_scored);
  if (result.found()) {
    std::printf("\n  cwnd-on-ack handler:  %s\n", result.handler_string().c_str());
    std::printf("  DTW distance to traces: %.3f\n", result.distance());
  } else {
    std::printf("no handler found\n");
  }
  return result.found() ? 0 : 1;
}
