// Why reverse-engineer a CCA at all? §2.1's answer: to understand its impact
// on fairness before it is everywhere. This example closes that loop:
//
//   1. Take a handler expression (a synthesized one from the pipeline, or
//      any expression on the command line in to_string() syntax).
//   2. Wrap it in core::HandlerCca so it runs as a real congestion
//      controller.
//   3. Duel it against TCP Reno on one bottleneck and report throughput
//      shares and Jain's fairness index.
//
// Build & run:
//   ./build/examples/fairness_analysis                        # BBR's handler
//   ./build/examples/fairness_analysis 'cwnd + 3 * reno-inc'  # your own
#include <cstdio>

#include "core/handler_cca.hpp"
#include "dsl/known_handlers.hpp"
#include "dsl/parse.hpp"
#include "net/duel.hpp"

int main(int argc, char** argv) {
  using namespace abg;
  setvbuf(stdout, nullptr, _IONBF, 0);

  dsl::ExprPtr handler;
  std::string label;
  if (argc > 1) {
    auto parsed = dsl::parse(argv[1]);
    if (!parsed) {
      std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
      return 2;
    }
    handler = parsed.expr;
    label = argv[1];
  } else {
    handler = dsl::known_handlers("bbr").fine_tuned;
    label = "BBR fine-tuned: " + dsl::to_string(*handler);
  }
  std::printf("handler under test: %s\n\n", label.c_str());

  std::printf("%-26s | %9s | %9s | %7s | %5s\n", "bottleneck", "reno Mb/s", "test Mb/s",
              "share", "Jain");
  for (double rtt_ms : {20.0, 60.0}) {
    for (double bw_mbps : {8.0, 14.0}) {
      trace::Environment env;
      env.bandwidth_bps = bw_mbps * 1e6;
      env.rtt_s = rtt_ms / 1e3;
      env.duration_s = 25.0;
      env.seed = 5;
      auto reno = cca::make_cca("reno");
      core::HandlerCca test(handler, nullptr, "under-test");
      auto duel = net::run_two_flows(*reno, test, env, /*stagger_s=*/2.0);
      char link[64];
      std::snprintf(link, sizeof(link), "%.0f Mb/s, %.0f ms RTT", bw_mbps, rtt_ms);
      std::printf("%-26s | %9.2f | %9.2f | %6.0f%% | %5.2f\n", link,
                  duel.throughput_a_bps / 1e6, duel.throughput_b_bps / 1e6,
                  100.0 * (1.0 - duel.share_a()), duel.jain_index());
    }
  }
  std::printf("\n'share' is the tested handler's fraction of combined goodput; Jain's index\n"
              "1.0 = perfectly fair. Try a Reno-variant ('cwnd + reno-inc') for a fair\n"
              "baseline, then something aggressive ('cwnd + 10 * reno-inc').\n");
  return 0;
}
