// Command-line front end for the whole library — the tool a measurement
// study would actually drive. Traces move through CSV files, so collection
// and synthesis can run on different machines (or synthesis can consume
// externally converted pcaps in the same format).
//
//   abagnale_cli list
//   abagnale_cli collect <cca> <out.csv> [bw_mbps rtt_ms dur_s loss xt_mbps]
//   abagnale_cli classify <trace.csv>...
//   abagnale_cli synthesize [--dsl <name>] [--timeout <s>] <trace.csv>...
//   abagnale_cli match <cca> <trace.csv>...   (score a known CCA's handler)
//   abagnale_cli --batch <manifest.json>      (batch sweep via api::Engine)
//
// Batch mode runs every job in the manifest through one api::Engine — one
// shared scoring pool and one shared eval cache — prints a per-job section
// with the job's status/exit class/cache traffic, and exits with the first
// failing job's exit class (0 when every job succeeded). With "report" set
// in the manifest, a consolidated JSON run report (per-job results plus the
// full metrics registry) is written there.
//
// Observability (synthesize/classify/match — may appear anywhere on the line):
//   --metrics-out <m.json>   write a JSON run report of every obs counter/
//                            gauge/histogram the run touched
//   --trace-out <t.json>     record Chrome trace-event spans (refinement
//                            iterations, per-bucket scoring, pool tasks);
//                            open the file in chrome://tracing or Perfetto
//   --status-port <n>        serve live status over HTTP on 127.0.0.1:<n>
//                            while the command runs: /metrics (Prometheus
//                            text), /jobs (batch job states), /journal
//                            (search-forensics summary), /healthz
//   --journal-out <f>        record the search-forensics journal (one binary
//                            event per candidate lifecycle step) to <f>;
//                            query it with abg_inspect. In batch mode the
//                            combined journal is additionally split into
//                            <f>.<job> per-job journals.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <fstream>
#include <limits>
#include <memory>
#include <mutex>

#include "api/engine.hpp"
#include "api/manifest.hpp"
#include "classify/classifier.hpp"
#include "core/abagnale.hpp"
#include "distance/simd.hpp"
#include "dsl/known_handlers.hpp"
#include "net/simulator.hpp"
#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/status_server.hpp"
#include "obs/trace_events.hpp"
#include "synth/replay.hpp"
#include "trace/trace_io.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/status.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace abg;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  abagnale_cli list\n"
               "  abagnale_cli collect <cca> <out.csv> [bw_mbps rtt_ms dur_s loss xt_mbps]\n"
               "  abagnale_cli classify <trace.csv>...\n"
               "  abagnale_cli synthesize [--dsl <name>] [--timeout <s>] [--no-fast-path]\n"
               "                [--simd <scalar|sse2|avx2|auto>]\n"
               "                [--checkpoint <state>] [--resume] <trace.csv>...\n"
               "  abagnale_cli match <cca> <trace.csv>...\n"
               "  abagnale_cli --batch <manifest.json>   (multi-job sweep, api::Engine)\n"
               "options (any subcommand, anywhere on the line):\n"
               "  --repair-traces         drop/clamp malformed trace rows instead of failing\n"
               "  --metrics-out <m.json>  JSON run report: counters/gauges/histograms\n"
               "  --trace-out <t.json>    Chrome trace-event spans (chrome://tracing, Perfetto)\n"
               "  --journal-out <f>       search-forensics journal (query with abg_inspect;\n"
               "                          batch mode also splits per-job <f>.<job> files)\n"
               "  --status-port <n>       live HTTP status on 127.0.0.1:<n> (0 = ephemeral):\n"
               "                          /metrics (Prometheus), /jobs (batch), /journal,\n"
               "                          /healthz\n"
               "exit codes: 0 ok, 1 unknown, 2 usage, 3 parse, 4 invalid-trace, 5 timeout,\n"
               "            6 cancelled, 7 io, 8 numeric, 9 invalid-argument\n");
  return 2;
}

// --repair-traces, extracted in main() alongside the obs flags.
trace::LoadOptions g_load_opts;
// Error class of the last trace that failed to load, so a run that loses all
// of its inputs exits with the cause (parse vs io vs invalid) rather than 1.
util::StatusCode g_load_error = util::StatusCode::kOk;

std::vector<trace::Trace> load_all(int argc, char** argv, int first) {
  std::vector<trace::Trace> traces;
  for (int i = first; i < argc; ++i) {
    auto t = trace::load_csv(argv[i], g_load_opts);
    if (!t.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[i], t.status().to_string().c_str());
      g_load_error = t.status().code();
      continue;
    }
    std::printf("loaded %s: cca=%s, %zu samples\n", argv[i], t->cca_name.c_str(),
                t->samples.size());
    traces.push_back(std::move(*t));
  }
  return traces;
}

// The /jobs provider behind the status server. The route is registered once
// (before start()), but the Engine only exists while cmd_batch runs, so the
// route reads through this swappable provider: empty job list outside a
// batch, Engine::jobs_json() (lock-free) during one. The provider is invoked
// while g_jobs_mu is held: that makes ~JobsProviderScope block until any
// in-flight /jobs call drains, so the provider can never run against an
// Engine that cmd_batch has already destroyed. The call is a lock-free
// snapshot and the lock is only otherwise touched by the scope ctor/dtor,
// so holding it across the call is cheap.
std::mutex g_jobs_mu;
std::function<std::string()> g_jobs_provider;

std::string jobs_body() {
  std::lock_guard lk(g_jobs_mu);
  return g_jobs_provider ? g_jobs_provider() : std::string("{\"jobs\":[]}");
}

// Scoped installation, so the provider can never outlive the Engine it
// captures (cmd_batch has early returns between Engine construction and
// teardown).
struct JobsProviderScope {
  explicit JobsProviderScope(std::function<std::string()> fn) {
    std::lock_guard lk(g_jobs_mu);
    g_jobs_provider = std::move(fn);
  }
  ~JobsProviderScope() {
    std::lock_guard lk(g_jobs_mu);
    g_jobs_provider = nullptr;
  }
};

// Exit code when a subcommand got no usable traces.
int no_traces_rc() {
  return g_load_error == util::StatusCode::kOk ? 1 : util::exit_code(g_load_error);
}

bool parse_double_arg(const char* flag, const char* text, double* out) {
  if (util::parse_double(text, out)) return true;
  std::fprintf(stderr, "%s: bad number '%s'\n", flag, text);
  return false;
}

int cmd_list() {
  std::printf("CCAs:");
  for (const auto& n : cca::all_cca_names()) std::printf(" %s", n.c_str());
  std::printf("\nDSLs:");
  for (const auto& n : dsl::curated_dsl_names()) std::printf(" %s", n.c_str());
  std::printf("\n");
  return 0;
}

int cmd_collect(int argc, char** argv) {
  if (argc < 4) return usage();
  double bw_mbps = 10.0, rtt_ms = 50.0, dur_s = 30.0, loss = 0.0, xt_mbps = 0.0;
  if ((argc > 4 && !parse_double_arg("bw_mbps", argv[4], &bw_mbps)) ||
      (argc > 5 && !parse_double_arg("rtt_ms", argv[5], &rtt_ms)) ||
      (argc > 6 && !parse_double_arg("dur_s", argv[6], &dur_s)) ||
      (argc > 7 && !parse_double_arg("loss", argv[7], &loss)) ||
      (argc > 8 && !parse_double_arg("xt_mbps", argv[8], &xt_mbps))) {
    return usage();
  }
  trace::Environment env;
  env.bandwidth_bps = bw_mbps * 1e6;
  env.rtt_s = rtt_ms / 1e3;
  env.duration_s = dur_s;
  env.random_loss = loss;
  env.cross_traffic_bps = xt_mbps * 1e6;
  auto t = net::run_connection(argv[2], env);
  if (auto st = trace::save_csv(t, argv[3]); !st.is_ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.to_string().c_str());
    return util::exit_code(st.code());
  }
  std::printf("wrote %s (%zu samples)\n", argv[3], t.samples.size());
  return 0;
}

int cmd_classify(int argc, char** argv) {
  auto traces = load_all(argc, argv, 2);
  if (traces.empty()) return no_traces_rc();
  classify::Classifier classifier{classify::ClassifierOptions{}};
  auto result = classifier.classify(traces);
  std::printf("label: %s\n", result.label.c_str());
  std::printf("closest:");
  for (std::size_t i = 0; i < result.closest.size() && i < 3; ++i) {
    std::printf(" %s", result.closest[i].c_str());
  }
  std::printf("\nsuggested DSL: %s\n", core::dsl_for_classification(result).c_str());
  return 0;
}

int cmd_synthesize(int argc, char** argv) {
  // Flags become a JSON job object parsed by the one canonical codec
  // (api::spec_from_json) and run through api::Engine — the same dialect and
  // defaults as a --batch manifest entry, a POST /v1/jobs body, and the
  // distributed worker protocol, so a CLI flag and a manifest key can never
  // drift apart.
  obs::JsonWriter w;
  w.begin_object();
  bool resume = false;
  bool has_checkpoint = false;
  int first = 2;
  while (first < argc && argv[first][0] == '-') {
    if (std::strcmp(argv[first], "--no-fast-path") == 0) {
      // Reference configuration: score every candidate from scratch (no memo
      // cache, no early abandoning, no batched bytecode replay). Results are
      // identical either way — this exists to measure the fast path, not to
      // change behavior.
      w.key("fast_path");
      w.value(false);
      first += 1;
      continue;
    }
    if (std::strcmp(argv[first], "--resume") == 0) {
      w.key("resume");
      w.value(true);
      resume = true;
      first += 1;
      continue;
    }
    if (first + 1 >= argc) return usage();
    if (std::strcmp(argv[first], "--dsl") == 0) {
      w.key("dsl");
      w.value(std::string_view(argv[first + 1]));
    } else if (std::strcmp(argv[first], "--timeout") == 0) {
      double timeout_s = 0.0;
      if (!parse_double_arg("--timeout", argv[first + 1], &timeout_s)) return usage();
      w.key("timeout_s");
      w.value(timeout_s);
    } else if (std::strcmp(argv[first], "--checkpoint") == 0) {
      w.key("checkpoint");
      w.value(std::string_view(argv[first + 1]));
      has_checkpoint = true;
    } else if (std::strcmp(argv[first], "--simd") == 0) {
      // Pin the DTW kernel tier for this run; wins over ABG_SIMD. The
      // default (auto) picks the best tier the CPU supports. Validated here
      // so a typo reports the flag, not a JSON key.
      if (!distance::parse_simd(argv[first + 1])) {
        std::fprintf(stderr, "--simd must be scalar/sse2/avx2/auto, got '%s'\n",
                     argv[first + 1]);
        return usage();
      }
      w.key("simd");
      w.value(std::string_view(argv[first + 1]));
    } else {
      return usage();
    }
    first += 2;
  }
  if (resume && !has_checkpoint) {
    std::fprintf(stderr, "--resume needs --checkpoint <state>\n");
    return usage();
  }
  if (first >= argc) return usage();
  if (g_load_opts.repair) {
    w.key("repair_traces");
    w.value(true);
  }
  w.key("traces");
  w.begin_array();
  for (int i = first; i < argc; ++i) w.value(std::string_view(argv[i]));
  w.end_array();
  w.end_object();

  auto spec = api::spec_from_json(w.take());
  if (!spec.ok()) {
    std::fprintf(stderr, "bad job spec: %s\n", spec.status().to_string().c_str());
    return util::exit_code(spec.status().code());
  }
  if (!util::log_level_from_env()) util::set_log_level(util::LogLevel::kInfo);
  api::Engine engine({.max_concurrent_jobs = 1});
  auto handle = engine.submit(std::move(*spec));
  if (!handle.ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n", handle.status().to_string().c_str());
    return util::exit_code(handle.status().code());
  }
  const api::JobResult& result = handle->wait();
  const util::Status& st = result.status;
  const bool partial = result.pipeline.synthesis.partial;
  if (!st.is_ok() && !partial) {
    // Hard failure (e.g. a corrupted checkpoint or unloadable trace), not an
    // interrupted search.
    std::fprintf(stderr, "synthesis failed: %s\n", st.to_string().c_str());
    return util::exit_code(st.code());
  }
  if (!result.found()) {
    std::printf("no handler found\n");
    return partial ? util::exit_code(st.code()) : 1;
  }
  std::printf("\nDSL: %s\nhandler: %s\ndistance: %.3f over %zu segments\n",
              result.pipeline.dsl_name.c_str(), result.pipeline.handler_string().c_str(),
              result.pipeline.distance(), result.segments_total);
  if (partial) {
    // Best-so-far from a preempted run: report it, but exit with the
    // interrupt class so batch drivers can tell it from a completed search.
    std::printf("partial result: %s\n", st.to_string().c_str());
    return util::exit_code(st.code());
  }
  return 0;
}

int cmd_match(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto& known = dsl::known_handlers(argv[2]);
  if (!known.fine_tuned) {
    std::fprintf(stderr, "no fine-tuned handler for %s\n", argv[2]);
    return 1;
  }
  auto traces = load_all(argc, argv, 3);
  if (traces.empty()) return no_traces_rc();
  std::vector<trace::Trace> steady;
  for (const auto& t : traces) steady.push_back(trace::trim_warmup(t, 2.0));
  auto segs = trace::segment_all(steady, 20);
  const double d =
      synth::total_distance(*known.fine_tuned, segs, distance::Metric::kDtw);
  std::printf("handler: %s\nDTW distance over %zu segments: %.3f\n",
              dsl::to_string(*known.fine_tuned).c_str(), segs.size(), d);
  return 0;
}

// --- batch mode (api::Engine over a JSON manifest) ---------------------------

void print_job_section(const api::JobResult& r, std::size_t index, std::size_t total) {
  std::printf("\n=== job %s (%zu/%zu) ===\n", r.name.c_str(), index + 1, total);
  std::printf("status: %s (exit class %d)\n",
              r.ok() ? "ok" : r.status.to_string().c_str(), r.exit_class());
  if (r.kind == api::JobSpec::Kind::kMister880) {
    if (r.found()) {
      std::printf("handler: %s\n", dsl::to_string(*r.mister880.handler).c_str());
    } else {
      std::printf("no exact-match handler\n");
    }
    std::printf("sketches: %zu, handlers tried: %zu, segments: %zu\n",
                r.mister880.sketches_tried, r.mister880.handlers_tried, r.segments_total);
  } else if (r.found()) {
    std::printf("DSL: %s\nhandler: %s\ndistance: %.3f over %zu segments\n",
                r.pipeline.dsl_name.c_str(), r.pipeline.handler_string().c_str(),
                r.pipeline.distance(), r.segments_total);
  } else {
    std::printf("no handler found\n");
  }
  std::printf("cache: %llu hits / %llu misses; %.2fs\n",
              static_cast<unsigned long long>(r.cache_hits),
              static_cast<unsigned long long>(r.cache_misses), r.seconds);
}

// Consolidated run report: per-job results plus one snapshot of the global
// metrics registry (per-job metrics sections live in "jobs"; the registry is
// process-wide by design).
bool write_batch_report(const std::string& path, const api::Engine& engine,
                        const std::vector<const api::JobResult*>& results,
                        double total_seconds) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("engine");
  w.begin_object();
  w.key("threads");
  w.value(static_cast<std::uint64_t>(engine.options().threads));
  w.key("max_concurrent_jobs");
  w.value(static_cast<std::uint64_t>(engine.options().max_concurrent_jobs));
  w.key("share_eval_cache");
  w.value(engine.options().share_eval_cache);
  w.end_object();
  w.key("total_seconds");
  w.value(total_seconds);
  std::uint64_t ok = 0;
  for (const auto* r : results) ok += r->ok() ? 1 : 0;
  w.key("jobs_ok");
  w.value(ok);
  w.key("jobs_failed");
  w.value(static_cast<std::uint64_t>(results.size()) - ok);
  w.key("jobs");
  w.begin_array();
  for (const auto* r : results) {
    w.begin_object();
    w.key("name");
    w.value(r->name);
    w.key("kind");
    w.value(r->kind == api::JobSpec::Kind::kMister880 ? "mister880" : "pipeline");
    w.key("status");
    w.value(r->status.to_string());
    w.key("exit_class");
    w.value(static_cast<std::int64_t>(r->exit_class()));
    w.key("found");
    w.value(r->found());
    if (r->kind == api::JobSpec::Kind::kPipeline && r->found()) {
      w.key("dsl");
      w.value(r->pipeline.dsl_name);
      w.key("handler");
      w.value(r->pipeline.handler_string());
      w.key("distance");
      w.value(r->pipeline.distance());
    }
    w.key("segments_total");
    w.value(static_cast<std::uint64_t>(r->segments_total));
    w.key("cache_hits");
    w.value(r->cache_hits);
    w.key("cache_misses");
    w.value(r->cache_misses);
    w.key("seconds");
    w.value(r->seconds);
    // Per-iteration convergence series (ISSUE 5): plotting a paper-style
    // search-progress curve needs only this report.
    w.key("convergence");
    w.begin_array();
    for (const auto& p : r->convergence) {
      w.begin_object();
      w.key("iteration");
      w.value(static_cast<std::int64_t>(p.iteration));
      w.key("best_distance");
      w.value(p.best_distance);
      w.key("wall_ms");
      w.value(p.wall_ms);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("metrics");
  w.raw(obs::metrics_json());
  w.end_object();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << w.str() << '\n';
  return out.good();
}

int cmd_batch(const char* manifest_path) {
  auto manifest = api::load_manifest(manifest_path);
  if (!manifest.ok()) {
    std::fprintf(stderr, "bad manifest: %s\n", manifest.status().to_string().c_str());
    return util::exit_code(manifest.status().code());
  }
  const std::size_t total = manifest->jobs.size();

  // Stable names up front (submit would auto-name later, but the progress
  // stream needs labels before the first iteration lands) and a shared
  // stdout lock so concurrent jobs' progress lines interleave whole.
  auto io_mu = std::make_shared<std::mutex>();
  for (std::size_t i = 0; i < total; ++i) {
    auto& spec = manifest->jobs[i];
    if (spec.name.empty()) spec.name = "job-" + std::to_string(i + 1);
    if (!spec.load.repair) spec.load.repair = g_load_opts.repair;
    spec.with_iteration_callback(
        [io_mu, name = spec.name](const synth::IterationReport& it) {
          std::lock_guard lk(*io_mu);
          const double best =
              it.buckets.empty() ? std::numeric_limits<double>::infinity() : it.buckets.front().score;
          std::printf("[%s] iteration: N=%d, %zu segments, best=%.3f (%.2fs)\n", name.c_str(),
                      it.n_target, it.segments_used, best, it.seconds);
        });
  }

  util::Stopwatch clock;
  api::Engine engine(manifest->engine);
  JobsProviderScope jobs_provider([&engine] { return engine.jobs_json(); });
  std::printf("batch: %zu jobs on %zu threads (%zu concurrent, cache %s)\n", total,
              engine.options().threads, engine.options().max_concurrent_jobs,
              engine.options().share_eval_cache ? "shared" : "per-job");
  auto handles = engine.submit_all(std::move(manifest->jobs));
  if (!handles.ok()) {
    std::fprintf(stderr, "batch rejected: %s\n", handles.status().to_string().c_str());
    return util::exit_code(handles.status().code());
  }

  int rc = 0;
  std::vector<const api::JobResult*> results;
  results.reserve(total);
  for (std::size_t i = 0; i < handles->size(); ++i) {
    const api::JobResult& r = (*handles)[i].wait();
    {
      std::lock_guard lk(*io_mu);
      print_job_section(r, i, total);
    }
    results.push_back(&r);
    if (rc == 0 && !r.ok()) rc = r.exit_class();
  }
  const double total_seconds = clock.elapsed_seconds();
  std::printf("\nbatch done: %zu jobs in %.2fs (exit %d)\n", total, total_seconds, rc);

  if (!manifest->report_path.empty()) {
    if (write_batch_report(manifest->report_path, engine, results, total_seconds)) {
      std::printf("batch report: %s\n", manifest->report_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write batch report %s\n", manifest->report_path.c_str());
      if (rc == 0) rc = util::exit_code(util::StatusCode::kIoError);
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);

  // Extract the observability flags first so every subcommand's own argv
  // parsing sees the command line it always did.
  std::string metrics_out, trace_out, journal_out;
  int status_port = -1;  // -1 = no status server
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--journal-out") == 0 && i + 1 < argc) {
      journal_out = argv[++i];
    } else if (std::strcmp(argv[i], "--status-port") == 0 && i + 1 < argc) {
      double port = 0;
      if (!parse_double_arg("--status-port", argv[++i], &port) || port < 0 || port > 65535) {
        return usage();
      }
      status_port = static_cast<int>(port);
    } else if (std::strcmp(argv[i], "--repair-traces") == 0) {
      g_load_opts.repair = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  const int nargs = static_cast<int>(args.size());
  if (nargs < 2) return usage();
  if (!trace_out.empty()) obs::set_tracing_enabled(true);
  if (!journal_out.empty()) {
    std::string err;
    if (!obs::journal_start(obs::JournalOptions{journal_out}, &err)) {
      std::fprintf(stderr, "journal: %s\n", err.c_str());
      return util::exit_code(util::StatusCode::kIoError);
    }
  }

  // The status server lives for the whole command; its /jobs route reads
  // through the swappable provider that batch mode installs.
  std::unique_ptr<obs::StatusServer> server;
  if (status_port >= 0) {
    server = std::make_unique<obs::StatusServer>();
    server->handle("/jobs", "application/json", jobs_body);
    server->handle("/journal", "application/json", [] { return obs::journal_summary_json(); });
    std::string err;
    if (!server->start(static_cast<std::uint16_t>(status_port), &err)) {
      std::fprintf(stderr, "status server: %s\n", err.c_str());
      return util::exit_code(util::StatusCode::kIoError);
    }
    std::printf("status: http://127.0.0.1:%u (/metrics /jobs /healthz)\n",
                static_cast<unsigned>(server->port()));
  }

  const std::string cmd = args[1];
  int rc = 2;
  if (cmd == "--batch") {
    if (nargs < 3) return usage();
    rc = cmd_batch(args[2]);
  } else if (cmd == "list") rc = cmd_list();
  else if (cmd == "collect") rc = cmd_collect(nargs, args.data());
  else if (cmd == "classify") rc = cmd_classify(nargs, args.data());
  else if (cmd == "synthesize") rc = cmd_synthesize(nargs, args.data());
  else if (cmd == "match") rc = cmd_match(nargs, args.data());
  else return usage();

  if (!metrics_out.empty()) {
    if (obs::write_metrics_json(metrics_out)) {
      std::printf("metrics report: %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics report %s\n", metrics_out.c_str());
      if (rc == 0) rc = 1;
    }
  }
  if (!trace_out.empty()) {
    if (obs::write_trace_json(trace_out)) {
      std::printf("trace events: %s (%zu events; open in chrome://tracing or Perfetto)\n",
                  trace_out.c_str(), obs::trace_event_count());
    } else {
      std::fprintf(stderr, "failed to write trace file %s\n", trace_out.c_str());
      if (rc == 0) rc = 1;
    }
  }
  if (!journal_out.empty()) {
    // Every producer is quiescent here: the subcommand has returned and the
    // engine/pool are destroyed, so the final drain is complete.
    const obs::JournalStats js = obs::journal_stop();
    std::printf("journal: %s (%llu events, %llu dropped; query with abg_inspect)\n",
                journal_out.c_str(), static_cast<unsigned long long>(js.recorded),
                static_cast<unsigned long long>(js.dropped));
    if (cmd == "--batch") {
      std::string err;
      const auto parts = obs::split_journal_by_job(journal_out, &err);
      for (const auto& p : parts) std::printf("journal: %s\n", p.c_str());
      if (!err.empty()) {
        std::fprintf(stderr, "journal split failed: %s\n", err.c_str());
        if (rc == 0) rc = 1;
      }
    }
  }
  return rc;
}
