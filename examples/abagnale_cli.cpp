// Command-line front end for the whole library — the tool a measurement
// study would actually drive. Traces move through CSV files, so collection
// and synthesis can run on different machines (or synthesis can consume
// externally converted pcaps in the same format).
//
//   abagnale_cli list
//   abagnale_cli collect <cca> <out.csv> [bw_mbps rtt_ms dur_s loss xt_mbps]
//   abagnale_cli classify <trace.csv>...
//   abagnale_cli synthesize [--dsl <name>] [--timeout <s>] <trace.csv>...
//   abagnale_cli match <cca> <trace.csv>...   (score a known CCA's handler)
//
// Observability (synthesize/classify/match — may appear anywhere on the line):
//   --metrics-out <m.json>   write a JSON run report of every obs counter/
//                            gauge/histogram the run touched
//   --trace-out <t.json>     record Chrome trace-event spans (refinement
//                            iterations, per-bucket scoring, pool tasks);
//                            open the file in chrome://tracing or Perfetto
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "classify/classifier.hpp"
#include "core/abagnale.hpp"
#include "dsl/known_handlers.hpp"
#include "net/simulator.hpp"
#include "obs/report.hpp"
#include "obs/trace_events.hpp"
#include "synth/replay.hpp"
#include "trace/trace_io.hpp"
#include "util/log.hpp"

namespace {

using namespace abg;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  abagnale_cli list\n"
               "  abagnale_cli collect <cca> <out.csv> [bw_mbps rtt_ms dur_s loss xt_mbps]\n"
               "  abagnale_cli classify <trace.csv>...\n"
               "  abagnale_cli synthesize [--dsl <name>] [--timeout <s>] [--no-fast-path] "
               "<trace.csv>...\n"
               "  abagnale_cli match <cca> <trace.csv>...\n"
               "observability options (classify/synthesize/match, anywhere on the line):\n"
               "  --metrics-out <m.json>  JSON run report: counters/gauges/histograms\n"
               "  --trace-out <t.json>    Chrome trace-event spans (chrome://tracing, Perfetto)\n");
  return 2;
}

std::vector<trace::Trace> load_all(int argc, char** argv, int first) {
  std::vector<trace::Trace> traces;
  for (int i = first; i < argc; ++i) {
    auto t = trace::load_csv(argv[i]);
    if (!t) {
      std::fprintf(stderr, "failed to load %s\n", argv[i]);
      continue;
    }
    std::printf("loaded %s: cca=%s, %zu samples\n", argv[i], t->cca_name.c_str(),
                t->samples.size());
    traces.push_back(std::move(*t));
  }
  return traces;
}

int cmd_list() {
  std::printf("CCAs:");
  for (const auto& n : cca::all_cca_names()) std::printf(" %s", n.c_str());
  std::printf("\nDSLs:");
  for (const auto& n : dsl::curated_dsl_names()) std::printf(" %s", n.c_str());
  std::printf("\n");
  return 0;
}

int cmd_collect(int argc, char** argv) {
  if (argc < 4) return usage();
  trace::Environment env;
  env.bandwidth_bps = (argc > 4 ? std::atof(argv[4]) : 10.0) * 1e6;
  env.rtt_s = (argc > 5 ? std::atof(argv[5]) : 50.0) / 1e3;
  env.duration_s = argc > 6 ? std::atof(argv[6]) : 30.0;
  env.random_loss = argc > 7 ? std::atof(argv[7]) : 0.0;
  env.cross_traffic_bps = (argc > 8 ? std::atof(argv[8]) : 0.0) * 1e6;
  auto t = net::run_connection(argv[2], env);
  if (!trace::save_csv(t, argv[3])) {
    std::fprintf(stderr, "write failed: %s\n", argv[3]);
    return 1;
  }
  std::printf("wrote %s (%zu samples)\n", argv[3], t.samples.size());
  return 0;
}

int cmd_classify(int argc, char** argv) {
  auto traces = load_all(argc, argv, 2);
  if (traces.empty()) return 1;
  classify::Classifier classifier{classify::ClassifierOptions{}};
  auto result = classifier.classify(traces);
  std::printf("label: %s\n", result.label.c_str());
  std::printf("closest:");
  for (std::size_t i = 0; i < result.closest.size() && i < 3; ++i) {
    std::printf(" %s", result.closest[i].c_str());
  }
  std::printf("\nsuggested DSL: %s\n", core::dsl_for_classification(result).c_str());
  return 0;
}

int cmd_synthesize(int argc, char** argv) {
  core::PipelineOptions opts;
  opts.synth.initial_samples = 8;
  opts.synth.concretize_budget = 24;
  opts.synth.max_depth = 4;
  opts.synth.max_nodes = 9;
  opts.synth.max_holes = 3;
  opts.synth.dopts.max_points = 128;
  opts.synth.timeout_s = 120.0;
  int first = 2;
  while (first < argc && argv[first][0] == '-') {
    if (std::strcmp(argv[first], "--no-fast-path") == 0) {
      // Reference configuration: score every candidate from scratch (no memo
      // cache, no early abandoning). Results are identical either way — this
      // exists to measure the fast path, not to change behavior.
      opts.synth.use_eval_cache = false;
      opts.synth.early_abandon = false;
      first += 1;
      continue;
    }
    if (first + 1 >= argc) return usage();
    if (std::strcmp(argv[first], "--dsl") == 0) {
      opts.dsl_override = argv[first + 1];
    } else if (std::strcmp(argv[first], "--timeout") == 0) {
      opts.synth.timeout_s = std::atof(argv[first + 1]);
    } else {
      return usage();
    }
    first += 2;
  }
  auto traces = load_all(argc, argv, first);
  if (traces.empty()) return 1;
  if (!util::log_level_from_env()) util::set_log_level(util::LogLevel::kInfo);
  core::Abagnale pipeline(opts);
  auto result = pipeline.run(traces);
  if (!result.found()) {
    std::printf("no handler found\n");
    return 1;
  }
  std::printf("\nDSL: %s\nhandler: %s\ndistance: %.3f over %zu segments\n",
              result.dsl_name.c_str(), result.handler_string().c_str(), result.distance(),
              result.segments_total);
  return 0;
}

int cmd_match(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto& known = dsl::known_handlers(argv[2]);
  if (!known.fine_tuned) {
    std::fprintf(stderr, "no fine-tuned handler for %s\n", argv[2]);
    return 1;
  }
  auto traces = load_all(argc, argv, 3);
  if (traces.empty()) return 1;
  std::vector<trace::Trace> steady;
  for (const auto& t : traces) steady.push_back(trace::trim_warmup(t, 2.0));
  auto segs = trace::segment_all(steady, 20);
  const double d =
      synth::total_distance(*known.fine_tuned, segs, distance::Metric::kDtw);
  std::printf("handler: %s\nDTW distance over %zu segments: %.3f\n",
              dsl::to_string(*known.fine_tuned).c_str(), segs.size(), d);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);

  // Extract the observability flags first so every subcommand's own argv
  // parsing sees the command line it always did.
  std::string metrics_out, trace_out;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  const int nargs = static_cast<int>(args.size());
  if (nargs < 2) return usage();
  if (!trace_out.empty()) obs::set_tracing_enabled(true);

  const std::string cmd = args[1];
  int rc = 2;
  if (cmd == "list") rc = cmd_list();
  else if (cmd == "collect") rc = cmd_collect(nargs, args.data());
  else if (cmd == "classify") rc = cmd_classify(nargs, args.data());
  else if (cmd == "synthesize") rc = cmd_synthesize(nargs, args.data());
  else if (cmd == "match") rc = cmd_match(nargs, args.data());
  else return usage();

  if (!metrics_out.empty()) {
    if (obs::write_metrics_json(metrics_out)) {
      std::printf("metrics report: %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics report %s\n", metrics_out.c_str());
      if (rc == 0) rc = 1;
    }
  }
  if (!trace_out.empty()) {
    if (obs::write_trace_json(trace_out)) {
      std::printf("trace events: %s (%zu events; open in chrome://tracing or Perfetto)\n",
                  trace_out.c_str(), obs::trace_event_count());
    } else {
      std::fprintf(stderr, "failed to write trace file %s\n", trace_out.c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
