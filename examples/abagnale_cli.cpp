// Command-line front end for the whole library — the tool a measurement
// study would actually drive. Traces move through CSV files, so collection
// and synthesis can run on different machines (or synthesis can consume
// externally converted pcaps in the same format).
//
//   abagnale_cli list
//   abagnale_cli collect <cca> <out.csv> [bw_mbps rtt_ms dur_s loss xt_mbps]
//   abagnale_cli classify <trace.csv>...
//   abagnale_cli synthesize [--dsl <name>] [--timeout <s>] <trace.csv>...
//   abagnale_cli match <cca> <trace.csv>...   (score a known CCA's handler)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "classify/classifier.hpp"
#include "core/abagnale.hpp"
#include "dsl/known_handlers.hpp"
#include "net/simulator.hpp"
#include "synth/replay.hpp"
#include "trace/trace_io.hpp"
#include "util/log.hpp"

namespace {

using namespace abg;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  abagnale_cli list\n"
               "  abagnale_cli collect <cca> <out.csv> [bw_mbps rtt_ms dur_s loss xt_mbps]\n"
               "  abagnale_cli classify <trace.csv>...\n"
               "  abagnale_cli synthesize [--dsl <name>] [--timeout <s>] <trace.csv>...\n"
               "  abagnale_cli match <cca> <trace.csv>...\n");
  return 2;
}

std::vector<trace::Trace> load_all(int argc, char** argv, int first) {
  std::vector<trace::Trace> traces;
  for (int i = first; i < argc; ++i) {
    auto t = trace::load_csv(argv[i]);
    if (!t) {
      std::fprintf(stderr, "failed to load %s\n", argv[i]);
      continue;
    }
    std::printf("loaded %s: cca=%s, %zu samples\n", argv[i], t->cca_name.c_str(),
                t->samples.size());
    traces.push_back(std::move(*t));
  }
  return traces;
}

int cmd_list() {
  std::printf("CCAs:");
  for (const auto& n : cca::all_cca_names()) std::printf(" %s", n.c_str());
  std::printf("\nDSLs:");
  for (const auto& n : dsl::curated_dsl_names()) std::printf(" %s", n.c_str());
  std::printf("\n");
  return 0;
}

int cmd_collect(int argc, char** argv) {
  if (argc < 4) return usage();
  trace::Environment env;
  env.bandwidth_bps = (argc > 4 ? std::atof(argv[4]) : 10.0) * 1e6;
  env.rtt_s = (argc > 5 ? std::atof(argv[5]) : 50.0) / 1e3;
  env.duration_s = argc > 6 ? std::atof(argv[6]) : 30.0;
  env.random_loss = argc > 7 ? std::atof(argv[7]) : 0.0;
  env.cross_traffic_bps = (argc > 8 ? std::atof(argv[8]) : 0.0) * 1e6;
  auto t = net::run_connection(argv[2], env);
  if (!trace::save_csv(t, argv[3])) {
    std::fprintf(stderr, "write failed: %s\n", argv[3]);
    return 1;
  }
  std::printf("wrote %s (%zu samples)\n", argv[3], t.samples.size());
  return 0;
}

int cmd_classify(int argc, char** argv) {
  auto traces = load_all(argc, argv, 2);
  if (traces.empty()) return 1;
  classify::Classifier classifier{classify::ClassifierOptions{}};
  auto result = classifier.classify(traces);
  std::printf("label: %s\n", result.label.c_str());
  std::printf("closest:");
  for (std::size_t i = 0; i < result.closest.size() && i < 3; ++i) {
    std::printf(" %s", result.closest[i].c_str());
  }
  std::printf("\nsuggested DSL: %s\n", core::dsl_for_classification(result).c_str());
  return 0;
}

int cmd_synthesize(int argc, char** argv) {
  core::PipelineOptions opts;
  opts.synth.initial_samples = 8;
  opts.synth.concretize_budget = 24;
  opts.synth.max_depth = 4;
  opts.synth.max_nodes = 9;
  opts.synth.max_holes = 3;
  opts.synth.dopts.max_points = 128;
  opts.synth.timeout_s = 120.0;
  int first = 2;
  while (first + 1 < argc && argv[first][0] == '-') {
    if (std::strcmp(argv[first], "--dsl") == 0) {
      opts.dsl_override = argv[first + 1];
    } else if (std::strcmp(argv[first], "--timeout") == 0) {
      opts.synth.timeout_s = std::atof(argv[first + 1]);
    } else {
      return usage();
    }
    first += 2;
  }
  auto traces = load_all(argc, argv, first);
  if (traces.empty()) return 1;
  util::set_log_level(util::LogLevel::kInfo);
  core::Abagnale pipeline(opts);
  auto result = pipeline.run(traces);
  if (!result.found()) {
    std::printf("no handler found\n");
    return 1;
  }
  std::printf("\nDSL: %s\nhandler: %s\ndistance: %.3f over %zu segments\n",
              result.dsl_name.c_str(), result.handler_string().c_str(), result.distance(),
              result.segments_total);
  return 0;
}

int cmd_match(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto& known = dsl::known_handlers(argv[2]);
  if (!known.fine_tuned) {
    std::fprintf(stderr, "no fine-tuned handler for %s\n", argv[2]);
    return 1;
  }
  auto traces = load_all(argc, argv, 3);
  if (traces.empty()) return 1;
  std::vector<trace::Trace> steady;
  for (const auto& t : traces) steady.push_back(trace::trim_warmup(t, 2.0));
  auto segs = trace::segment_all(steady, 20);
  const double d =
      synth::total_distance(*known.fine_tuned, segs, distance::Metric::kDtw);
  std::printf("handler: %s\nDTW distance over %zu segments: %.3f\n",
              dsl::to_string(*known.fine_tuned).c_str(), segs.size(), d);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (cmd == "collect") return cmd_collect(argc, argv);
  if (cmd == "classify") return cmd_classify(argc, argv);
  if (cmd == "synthesize") return cmd_synthesize(argc, argv);
  if (cmd == "match") return cmd_match(argc, argv);
  return usage();
}
