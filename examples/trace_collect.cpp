// Trace-collection tool: run any registered CCA through the simulated
// testbed, optionally inject measurement noise (§2.2), and write the per-ACK
// trace to CSV for offline analysis or for feeding back into the pipeline
// via trace::load_csv.
//
// Build & run:  ./build/examples/trace_collect <cca> <out-prefix>
//               [bandwidth_mbps] [rtt_ms] [duration_s] [noise]
// Example:      ./build/examples/trace_collect cubic /tmp/cubic 10 50 30 0.1
#include <cstdio>

#include "net/simulator.hpp"
#include "trace/noise.hpp"
#include "trace/trace_io.hpp"
#include "util/csv.hpp"
#include "util/retry.hpp"
#include "util/status.hpp"

int main(int argc, char** argv) {
  using namespace abg;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <cca> <out-prefix> [bw_mbps] [rtt_ms] [dur_s] [noise-frac]\n"
                 "known CCAs:",
                 argv[0]);
    for (const auto& n : cca::all_cca_names()) std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  const std::string cca_name = argv[1];
  const std::string prefix = argv[2];
  double bw_mbps = 10.0, rtt_ms = 50.0, dur_s = 30.0, noise_frac = 0.0;
  if ((argc > 3 && !util::parse_double(argv[3], &bw_mbps)) ||
      (argc > 4 && !util::parse_double(argv[4], &rtt_ms)) ||
      (argc > 5 && !util::parse_double(argv[5], &dur_s)) ||
      (argc > 6 && !util::parse_double(argv[6], &noise_frac))) {
    std::fprintf(stderr, "bad numeric argument\n");
    return 2;
  }
  trace::Environment env;
  env.bandwidth_bps = bw_mbps * 1e6;
  env.rtt_s = rtt_ms / 1e3;
  env.duration_s = dur_s;
  env.seed = 1;

  // A degenerate draw (e.g. every packet lost under an extreme loss rate)
  // can produce an empty trace; fresh-seed retries usually recover. The
  // simulator is instant, so the backoff stays nominal.
  trace::Trace t;
  util::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_s = 0.0;
  policy.retryable = {util::StatusCode::kInvalidTrace};
  util::Status st = util::Retry(policy).run([&] {
    t = net::run_connection(cca_name, env);
    if (!t.samples.empty()) return util::Status::ok();
    env.seed += 1;  // next attempt draws a different packet schedule
    return util::Status(util::StatusCode::kInvalidTrace,
                        "empty trace from " + cca_name);
  });
  if (!st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return util::exit_code(st.code());
  }
  std::printf("collected %zu ACK samples from %s under %s\n", t.samples.size(),
              cca_name.c_str(), env.label().c_str());

  if (noise_frac > 0) {
    trace::NoiseConfig cfg;
    cfg.drop_sample_prob = noise_frac / 2;
    cfg.rtt_jitter_frac = noise_frac;
    cfg.cwnd_noise_frac = noise_frac / 2;
    util::Rng rng(7);
    t = trace::add_noise(t, cfg, rng);
    std::printf("after noise injection: %zu samples\n", t.samples.size());
  }

  const std::string path = prefix + "_" + t.env.label() + ".csv";
  if (auto st = trace::save_csv(t, path); !st.is_ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(), st.to_string().c_str());
    return util::exit_code(st.code());
  }
  std::printf("wrote %s\n", path.c_str());

  // Round-trip check so the file is immediately usable.
  auto loaded = trace::load_csv(path);
  std::printf("reload check: %s (%zu samples)\n", loaded.ok() ? "ok" : "FAILED",
              loaded.ok() ? loaded->samples.size() : 0);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().to_string().c_str());
    return util::exit_code(loaded.status().code());
  }
  return 0;
}
