// Trace-collection tool: run any registered CCA through the simulated
// testbed, optionally inject measurement noise (§2.2), and write the per-ACK
// trace to CSV for offline analysis or for feeding back into the pipeline
// via trace::load_csv.
//
// Build & run:  ./build/examples/trace_collect <cca> <out-prefix>
//               [bandwidth_mbps] [rtt_ms] [duration_s] [noise]
// Example:      ./build/examples/trace_collect cubic /tmp/cubic 10 50 30 0.1
#include <cstdio>
#include <cstdlib>

#include "net/simulator.hpp"
#include "trace/noise.hpp"
#include "trace/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace abg;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <cca> <out-prefix> [bw_mbps] [rtt_ms] [dur_s] [noise-frac]\n"
                 "known CCAs:",
                 argv[0]);
    for (const auto& n : cca::all_cca_names()) std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  const std::string cca_name = argv[1];
  const std::string prefix = argv[2];
  trace::Environment env;
  env.bandwidth_bps = (argc > 3 ? std::atof(argv[3]) : 10.0) * 1e6;
  env.rtt_s = (argc > 4 ? std::atof(argv[4]) : 50.0) / 1e3;
  env.duration_s = argc > 5 ? std::atof(argv[5]) : 30.0;
  const double noise_frac = argc > 6 ? std::atof(argv[6]) : 0.0;
  env.seed = 1;

  auto t = net::run_connection(cca_name, env);
  std::printf("collected %zu ACK samples from %s under %s\n", t.samples.size(),
              cca_name.c_str(), env.label().c_str());

  if (noise_frac > 0) {
    trace::NoiseConfig cfg;
    cfg.drop_sample_prob = noise_frac / 2;
    cfg.rtt_jitter_frac = noise_frac;
    cfg.cwnd_noise_frac = noise_frac / 2;
    util::Rng rng(7);
    t = trace::add_noise(t, cfg, rng);
    std::printf("after noise injection: %zu samples\n", t.samples.size());
  }

  const std::string path = prefix + "_" + t.env.label() + ".csv";
  if (!trace::save_csv(t, path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  // Round-trip check so the file is immediately usable.
  auto loaded = trace::load_csv(path);
  std::printf("reload check: %s (%zu samples)\n", loaded ? "ok" : "FAILED",
              loaded ? loaded->samples.size() : 0);
  return loaded ? 0 : 1;
}
