// Scenario: a proprietary CCA in the wild (§2.1). A "student" CCA stands in
// for the unknown algorithm. The example follows the paper's workflow:
//
//   1. Classify the traces against the kernel CCA reference bank — for a
//      novel algorithm this comes back Unknown, with closest-CCA hints.
//   2. Use the hints to pick a sub-DSL (§3.3).
//   3. Synthesize an approximate handler and inspect what signals and
//      structure the unknown CCA appears to use (§8: "the results ...
//      reliably give insights into the signals and structure a target CCA
//      uses").
//
// Build & run:  ./build/examples/reverse_engineer_unknown [student1..student7]
#include <cstdio>

#include "classify/classifier.hpp"
#include "core/abagnale.hpp"
#include "net/simulator.hpp"
#include "util/retry.hpp"

int main(int argc, char** argv) {
  using namespace abg;
  setvbuf(stdout, nullptr, _IONBF, 0);
  const std::string unknown = argc > 1 ? argv[1] : "student2";

  // --- 1. Measure the unknown service under varied conditions. ------------
  // Measurement can come up empty on a degenerate draw; each retry runs the
  // whole collection again with fresh seeds before giving up.
  std::vector<trace::Trace> traces;
  std::vector<trace::Environment> envs;
  std::uint64_t seed = 77;
  util::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_s = 0.0;  // re-simulation is instant; no need to wait
  policy.retryable = {util::StatusCode::kInvalidTrace};
  const util::Status st = util::Retry(policy).run([&] {
    envs = net::default_environments(3, seed++);
    for (auto& e : envs) e.duration_s = 15.0;
    traces = net::collect_traces(unknown, envs);
    for (const auto& t : traces) {
      if (!t.samples.empty()) return util::Status::ok();
    }
    return util::Status(util::StatusCode::kInvalidTrace,
                        "collection produced no samples");
  });
  if (!st.is_ok()) {
    std::fprintf(stderr, "%s; giving up\n", st.to_string().c_str());
    return 1;
  }
  std::printf("collected %zu connections from the unknown CCA\n", traces.size());

  // --- 2. Classify. ---------------------------------------------------------
  classify::ClassifierOptions copts;
  copts.environments = envs;
  copts.unknown_threshold = 20.0;  // strict: novel CCAs should not match
  classify::Classifier classifier(copts);
  auto cls = classifier.classify(traces);
  std::printf("classifier: %s\n", cls.label.c_str());
  if (!cls.closest.empty()) {
    std::printf("closest known CCAs: %s, %s\n", cls.closest[0].c_str(),
                cls.closest.size() > 1 ? cls.closest[1].c_str() : "-");
  }
  const std::string dsl_name = core::dsl_for_classification(cls);
  std::printf("selected sub-DSL: %s\n\n", dsl_name.c_str());

  // --- 3. Synthesize. -------------------------------------------------------
  core::PipelineOptions popts;
  popts.dsl_override = dsl_name;
  popts.synth.initial_samples = 8;
  popts.synth.concretize_budget = 24;
  popts.synth.max_depth = 4;
  popts.synth.max_nodes = 9;
  popts.synth.max_holes = 3;
  popts.synth.dopts.max_points = 128;
  popts.synth.timeout_s = 120.0;
  core::Abagnale pipeline(popts);
  auto result = pipeline.run(traces);

  if (!result.found()) {
    std::printf("no handler found%s\n",
                result.synthesis.status.is_ok()
                    ? ""
                    : (": " + result.synthesis.status.to_string()).c_str());
    return 1;
  }
  if (result.synthesis.partial) {
    std::printf("(search preempted: %s — reporting best-so-far)\n",
                result.synthesis.status.to_string().c_str());
  }
  std::printf("synthesized handler: %s\n", result.handler_string().c_str());
  std::printf("distance: %.2f over %zu segments\n\n", result.distance(),
              result.segments_total);

  // What did we learn about the unknown CCA?
  const auto& handler = *result.synthesis.best.handler;
  std::printf("signals the unknown CCA appears to react to:");
  for (auto s : dsl::signals_used(handler)) std::printf(" %s", dsl::signal_name(s));
  std::printf("\noperators in its update rule:");
  for (auto o : dsl::ops_used(handler)) std::printf(" %s", dsl::op_name(o));
  std::printf("\n");
  return 0;
}
