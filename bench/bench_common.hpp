// Shared plumbing for the table/figure reproduction harnesses. Each bench
// binary prints the paper's rows for one table or figure. Scale is selected
// with the ABG_SCALE environment variable:
//   quick (default) — minutes-scale bounds; shapes match the paper.
//   full            — paper-scale depth/sample budgets (hours).
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/abagnale.hpp"
#include "dsl/known_handlers.hpp"
#include "net/simulator.hpp"
#include "obs/report.hpp"
#include "synth/refinement.hpp"
#include "synth/replay.hpp"
#include "trace/trace.hpp"

namespace abg::bench {

inline bool full_scale() {
  const char* s = std::getenv("ABG_SCALE");
  return s != nullptr && std::string(s) == "full";
}

// Optional row filter for the per-CCA tables: ABG_ONLY=reno,vegas runs just
// those rows (useful when iterating on one CCA).
inline bool row_selected(const std::string& cca) {
  const char* s = std::getenv("ABG_ONLY");
  if (s == nullptr) return true;
  const std::string list = std::string(",") + s + ",";
  return list.find("," + cca + ",") != std::string::npos;
}

// Trace collection matching §3.2's testbed sweep, sized by scale. One
// environment carries mild random loss and one carries cross traffic so
// every CCA — including loss-free converging ones like Vegas — exhibits
// window *dynamics* in its steady state (§3.2's trace-diversity requirement:
// without it, degenerate hold-the-window handlers can win).
inline std::vector<trace::Trace> collect(const std::string& cca, std::uint64_t seed = 1) {
  auto envs = net::default_environments(full_scale() ? 5 : 3, seed);
  if (!full_scale()) {
    for (auto& e : envs) e.duration_s = 15.0;
  }
  if (envs.size() >= 2) envs[1].random_loss = 0.002;
  if (envs.size() >= 3) envs[2].cross_traffic_bps = 0.3 * envs[2].bandwidth_bps;
  return net::collect_traces(cca, envs);
}

// Steady-state segment pool for a CCA's traces.
inline std::vector<trace::Segment> segments_for(const std::vector<trace::Trace>& traces) {
  std::vector<trace::Trace> steady;
  steady.reserve(traces.size());
  for (const auto& t : traces) steady.push_back(trace::trim_warmup(t, 2.0));
  return trace::segment_all(steady, 20);
}

// The longest-duration segment of each trace: the segments where steady-
// state structure (BBR pulses, H-TCP's ramp) is actually visible.
inline std::vector<trace::Segment> longest_segments(const std::vector<trace::Trace>& traces) {
  std::vector<trace::Segment> out;
  for (const auto& t : traces) {
    auto segs = trace::segment_all({trace::trim_warmup(t, 2.0)}, 20);
    std::size_t best = 0;
    double best_dur = -1.0;
    for (std::size_t i = 0; i < segs.size(); ++i) {
      const double dur =
          segs[i].samples.back().sig.now - segs[i].samples.front().sig.now;
      if (dur > best_dur) {
        best_dur = dur;
        best = i;
      }
    }
    if (!segs.empty()) out.push_back(std::move(segs[best]));
  }
  return out;
}

// Synthesis bounds per scale. `per_cca_timeout_s` keeps a 20-row table
// bounded; the loop returns its best-so-far handler on expiry (§4.4).
inline synth::SynthesisOptions synth_opts(double per_cca_timeout_s) {
  synth::SynthesisOptions o;
  if (full_scale()) {
    o.initial_samples = 16;
    o.concretize_budget = 64;
    o.max_iterations = 6;
    o.exhaustive_cap = 4000;
    o.timeout_s = per_cca_timeout_s * 20;
  } else {
    o.initial_samples = 8;
    o.concretize_budget = 24;
    o.max_iterations = 4;
    o.exhaustive_cap = 300;
    o.max_depth = 4;
    o.max_nodes = 9;
    o.max_holes = 3;
    o.dopts.max_points = 128;
    o.timeout_s = per_cca_timeout_s;
  }
  o.initial_keep = 5;
  o.seed = 7;
  // ABG_NO_FAST_PATH=1 runs the reference configuration (no memo cache, no
  // early abandoning, no batched bytecode replay) so one binary can measure
  // both sides of the fast-path speedup. Results are bit-identical either
  // way (tests/test_fast_path.cpp, tests/test_data_parallel.cpp).
  if (std::getenv("ABG_NO_FAST_PATH") != nullptr) {
    o.use_eval_cache = false;
    o.early_abandon = false;
    o.batch_replay = false;
  }
  return o;
}

// Distance of a known handler over a segment set, with Table-2 style
// packet-unit magnitudes.
inline double handler_distance(const dsl::Expr& handler,
                               const std::vector<trace::Segment>& segs,
                               distance::Metric metric = distance::Metric::kDtw) {
  distance::DistanceOptions dopts;
  return synth::total_distance(handler, segs, metric, dopts);
}

inline void rule(char c = '-', int width = 118) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

// "Table 2 — synthesized vs ..." -> "table_2_synthesized_vs_..." (truncated).
inline std::string slug(const std::string& title) {
  std::string out;
  bool gap = false;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (gap && !out.empty()) out += '_';
      gap = false;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      gap = true;
    }
    if (out.size() >= 48) break;
  }
  return out.empty() ? "bench" : out;
}

inline void banner(const std::string& title) {
  rule('=');
  std::printf("%s   [scale=%s]\n", title.c_str(), full_scale() ? "full" : "quick");
  rule('=');
  // Every bench leaves an obs run report next to its printed table, so the
  // recorded BENCH_* trajectories carry counter context (handlers scored,
  // DTW evals, sim packets) alongside the numbers.
  obs::write_metrics_json_at_exit(slug(title) + ".metrics.json");
}

}  // namespace abg::bench
