// Figure 5: HTCP's inflection point vs the Reno-variant handler (§5.3). An
// HTCP trace segment shows convex growth (the quadratic alpha ramp), yet the
// plain Reno-variant handler achieves a distance low enough that Abagnale
// never explores the more complex conditional expression. We print both
// handlers' distances and the observed/synthesized series shapes.
#include "bench_common.hpp"

using namespace abg;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  bench::banner("Figure 5 — HTCP: the Reno-variant handler is 'good enough'");

  auto traces = bench::collect("htcp", /*seed=*/505);
  // The longest-duration segment has the clearest inflection: H-TCP's alpha
  // ramp only departs from Reno after a second without loss.
  auto segs = bench::longest_segments(traces);
  if (segs.empty()) {
    std::printf("no segments collected\n");
    return 1;
  }
  std::size_t pick = 0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const double dur_i = segs[i].samples.back().sig.now - segs[i].samples.front().sig.now;
    const double dur_p =
        segs[pick].samples.back().sig.now - segs[pick].samples.front().sig.now;
    if (dur_i > dur_p) pick = i;
  }
  const auto& seg = segs[pick];

  const auto& known = dsl::known_handlers("htcp");
  auto reno_variant = dsl::add(dsl::sig(dsl::Signal::kCwnd), dsl::sig(dsl::Signal::kRenoInc));

  const double d_reno = bench::handler_distance(*reno_variant, {seg});
  const double d_tuned = bench::handler_distance(*known.fine_tuned, {seg});

  std::printf("segment: %s, %zu acks, %.1f s\n", seg.env.label().c_str(), seg.samples.size(),
              seg.samples.back().sig.now - seg.samples.front().sig.now);
  std::printf("reno-variant handler  (cwnd + reno-inc): DTW %.2f\n", d_reno);
  std::printf("fine-tuned handler    (%s): DTW %.2f\n",
              dsl::to_string(*known.fine_tuned).c_str(), d_tuned);

  // ASCII sparkline of observed vs reno-variant synthesized cwnd.
  auto spark = [](const std::vector<double>& v) {
    static const char* levels = " .:-=+*#%@";
    double lo = 1e300, hi = -1e300;
    for (double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    std::string s;
    const auto pts = distance::resample(v, 72);
    for (double x : pts) {
      const int idx = hi > lo ? static_cast<int>(9.0 * (x - lo) / (hi - lo)) : 0;
      s += levels[std::clamp(idx, 0, 9)];
    }
    return s;
  };
  std::printf("\nobserved cwnd      |%s|\n", spark(synth::observed_series_pkts(seg)).c_str());
  std::printf("reno-variant replay|%s|\n", spark(synth::replay(*reno_variant, seg)).c_str());
  std::printf("fine-tuned replay  |%s|\n", spark(synth::replay(*known.fine_tuned, seg)).c_str());
  std::printf("\nThe observed curve bends upward (H-TCP's quadratic ramp), but the linear\n"
              "Reno-variant stays within a small DTW distance of it — which is why the\n"
              "search returns the simpler expression (§5.3).\n");
  return 0;
}
