// Table 4: search accuracy relative to the fine-tuned handlers (§6.2). For
// each CCA with a fine-tuned handler, run the refinement loop and report the
// rank of the fine-tuned handler's *bucket* (its exact operator-usage set)
// after iterations 1 and 2 — i.e. how early Abagnale would have discarded
// the expert's expression family.
#include "bench_common.hpp"

#include "synth/buckets.hpp"

using namespace abg;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  bench::banner("Table 4 — rank of the fine-tuned handler's bucket per iteration");
  std::printf("%-10s | %-22s | %-16s | %-16s\n", "CCA", "fine-tuned bucket",
              "pos. after iter 1", "pos. after iter 2");
  bench::rule();

  const double per_cca_timeout = bench::full_scale() ? 3600.0 : 25.0;
  for (const auto& name : cca::kernel_cca_names()) {
    if (!bench::row_selected(name)) continue;
    const auto& known = dsl::known_handlers(name);
    if (!known.fine_tuned) continue;  // BIC/CDG/HighSpeed have none

    auto traces = bench::collect(name, /*seed=*/101);
    auto segs = bench::segments_for(traces);
    if (segs.empty()) continue;

    auto opts = bench::synth_opts(per_cca_timeout);
    if (name == "cubic") opts.unit_check = false;
    const auto d = dsl::dsl_by_name(known.dsl_hint);
    auto result = synth::synthesize(d, segs, opts);

    const auto target = synth::bucket_of(*dsl::to_sketch(known.fine_tuned));
    auto fmt = [&](std::size_t iter) -> std::string {
      auto rank = result.bucket_rank(target.label, iter);
      if (!rank) return iter < result.iterations.size() ? "discarded" : "-";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%zu / %zu", rank->first, rank->second);
      return buf;
    };
    std::printf("%-10s | %-22.22s | %-16s | %-16s\n", name.c_str(), target.label.c_str(),
                fmt(0).c_str(), fmt(1).c_str());
  }
  bench::rule();
  std::printf("\"x / y\": the fine-tuned handler's bucket ranked x-th of the y buckets scored\n"
              "in that iteration; \"discarded\" means it did not survive only-top-k (§4.4).\n");
  return 0;
}
