// Figure 6 / §6.3: impact of the input DSL. Synthesize student CCA #1 and
// student CCA #3 under three DSLs — Delay-7, Delay-11, and Vegas-11 — and
// report the best handler + distance per DSL. Expected shape: for student 1
// (a Vegas-style CCA), richer DSLs with the vegas-diff macro help; for
// student 3 (a pure rate tracker), the leaner Delay-11 wins under the same
// time budget because its search space is smaller.
#include "bench_common.hpp"

using namespace abg;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  bench::banner("Figure 6 — synthesized handlers per input DSL (student CCAs)");

  const double timeout = bench::full_scale() ? 3600.0 : 30.0;
  for (const auto& cca_name : {std::string("student1"), std::string("student3")}) {
    auto traces = bench::collect(cca_name, /*seed=*/606);
    auto segs = bench::segments_for(traces);
    std::printf("\n%s (%zu segments)\n", cca_name.c_str(), segs.size());
    bench::rule();
    std::printf("%-10s | %-64s | %10s\n", "DSL", "best handler", "DTW");
    bench::rule();
    for (const auto& dsl_name : {std::string("delay7"), std::string("delay11"),
                                 std::string("vegas11")}) {
      auto opts = bench::synth_opts(timeout);
      // Figure 6 varies only the DSL: do not override its size bounds.
      opts.max_depth.reset();
      opts.max_nodes.reset();
      auto result = synth::synthesize(dsl::dsl_by_name(dsl_name), segs, opts);
      const std::string h =
          result.best.valid() ? dsl::to_string(*result.best.handler) : "<none>";
      const double d =
          result.best.valid() ? bench::handler_distance(*result.best.handler, segs) : -1;
      std::printf("%-10s | %-64.64s | %10.2f%s\n", dsl_name.c_str(), h.c_str(), d,
                  result.timed_out ? " (timeout)" : "");
    }
  }
  bench::rule();
  std::printf("Distances are over each CCA's full segment pool (lower is better within a\n"
              "CCA's block). §6.3's effect: the best DSL depends on whether the target CCA\n"
              "actually uses the extra components the richer DSL pays search time for.\n");
  return 0;
}
