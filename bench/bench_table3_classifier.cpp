// Table 3: classifier output for every CCA. Kernel CCAs are classified
// against the full kernel reference bank (the Gordon role); student CCAs
// against the same bank in CCAnalyzer mode, where novel algorithms come back
// "Unknown" with closest-CCA hints.
#include "bench_common.hpp"

#include <algorithm>

#include "classify/classifier.hpp"

using namespace abg;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  bench::banner("Table 3 — classifier output per CCA");

  classify::ClassifierOptions copts;
  copts.known_ccas = cca::kernel_cca_names();
  auto envs = net::default_environments(3, 9001);
  if (!bench::full_scale()) {
    for (auto& e : envs) e.duration_s = 15.0;
  }
  copts.environments = envs;
  copts.unknown_threshold = 15.0;
  classify::Classifier classifier(copts);

  // Test connections under slightly perturbed conditions + measurement
  // noise: references never match the probe traces exactly, as in real
  // remote measurement.
  auto probe_envs = envs;
  for (auto& e : probe_envs) {
    e.rtt_s *= 1.05;
    e.bandwidth_bps *= 0.97;
    e.random_loss = std::max(e.random_loss, 0.0005);
    e.seed += 7777;
  }

  std::printf("%-10s | %-28s | %s\n", "CCA", "classifier output", "closest known CCAs");
  bench::rule();
  int correct = 0, unknown = 0, wrong = 0;
  std::vector<std::string> rows = cca::kernel_cca_names();
  for (const auto& s : cca::student_cca_names()) rows.push_back(s);
  for (const auto& name : rows) {
    auto traces = net::collect_traces(name, probe_envs);
    auto result = classifier.classify(traces);
    std::string verdict = result.label;
    if (result.is_unknown() && !result.closest.empty()) {
      verdict = "Unknown (" + result.closest[0] +
                (result.closest.size() > 1 ? ", " + result.closest[1] : "") + ")";
    }
    const bool is_student = name.rfind("student", 0) == 0;
    const char* mark;
    if (result.is_unknown()) {
      mark = is_student ? "[expected]" : "[unknown]";
      ++unknown;
    } else if (result.label == name) {
      mark = "[correct]";
      ++correct;
    } else {
      mark = "[wrong]";
      ++wrong;
    }
    std::printf("%-10s | %-28s | %s %s\n", name.c_str(), verdict.c_str(),
                result.closest.empty() ? "" : result.closest.front().c_str(), mark);
  }
  bench::rule();
  std::printf("summary: %d correct, %d unknown, %d misclassified out of %zu\n", correct,
              unknown, wrong, rows.size());
  std::printf("(The paper's Gordon run also misclassifies several kernel CCAs — Westwood as\n"
              " Vegas, Hybla as BBR, Veno as YeAH — and reports all student CCAs Unknown.)\n");
  return 0;
}
