// Noise-robustness ablation (§1, §2.2): the head-to-head the paper argues
// qualitatively — "Mister880 cannot synthesize any algorithm other than
// NewReno (measured without noise) and cannot handle noisy traces at all."
// We sweep measurement noise over Reno traces and run both formulations:
//   * Mister880 (decision problem): accept only exact replay matches.
//   * Abagnale (optimization): minimize DTW distance.
// Expected shape: both succeed at zero noise; the decision baseline stops
// finding anything as soon as noise appears, while the optimization keeps
// returning a Reno-family handler whose distance degrades gracefully.
#include "bench_common.hpp"

#include "synth/mister880.hpp"
#include "trace/noise.hpp"

using namespace abg;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  bench::banner("Ablation — decision (Mister880) vs optimization (Abagnale) under noise");

  auto clean = bench::collect("reno", /*seed=*/808);

  std::printf("%-12s | %-24s | %-44s %9s\n", "cwnd noise", "Mister880 (decision)",
              "Abagnale (optimization)", "DTW");
  bench::rule();

  for (double noise : {0.0, 0.01, 0.03, 0.10}) {
    // Perturb the observation (vantage-point error on the inferred CWND).
    util::Rng rng(9);
    std::vector<trace::Trace> traces;
    for (const auto& t : clean) {
      trace::NoiseConfig cfg;
      cfg.cwnd_noise_frac = noise;
      traces.push_back(trace::add_noise(t, cfg, rng));
    }
    auto segs = bench::segments_for(traces);
    std::vector<trace::Segment> working(segs.begin(),
                                        segs.begin() + std::min<std::size_t>(3, segs.size()));

    // Decision baseline.
    synth::Mister880Options mopts;
    mopts.max_depth = 3;
    mopts.max_nodes = 7;
    mopts.max_holes = 2;
    mopts.max_sketches = bench::full_scale() ? 2000 : 400;
    auto m = synth::mister880_synthesize(dsl::reno_dsl(), working, mopts);

    // Optimization pipeline (same bounds).
    auto sopts = bench::synth_opts(bench::full_scale() ? 3600.0 : 30.0);
    sopts.max_depth = 3;
    sopts.max_nodes = 7;
    sopts.max_holes = 2;
    auto a = synth::synthesize(dsl::reno_dsl(), segs, sopts);

    char noise_label[16];
    std::snprintf(noise_label, sizeof(noise_label), "+/- %2.0f%%", noise * 100);
    std::printf("%-12s | %-24s | %-44.44s %9.2f\n", noise_label,
                m.found() ? dsl::to_string(*m.handler).c_str() : "no handler found",
                a.best.valid() ? dsl::to_string(*a.best.handler).c_str() : "<none>",
                a.best.distance);
  }
  bench::rule();
  std::printf("The decision formulation needs a point-for-point exact replay, so any\n"
              "vantage-point noise kills it; the optimization formulation degrades\n"
              "gracefully and keeps returning the Reno-family handler (§2.2, §3).\n");
  return 0;
}
