// Figure 3: distance metrics' tolerance to error in handler constants. For
// BBR traces, take the expert (fine-tuned) handlers of BBR / Cubic / Reno /
// Vegas, scale every constant by a multiplicative error in [0.1, 10], and
// check — per metric — whether the BBR handler is still the closest to the
// traces. The paper selects DTW because it stays correct over the widest
// error range.
#include <cmath>
#include <functional>

#include "bench_common.hpp"

using namespace abg;

namespace {

// Scale every constant leaf by f.
dsl::ExprPtr scale_constants(const dsl::ExprPtr& e, double f) {
  switch (e->kind) {
    case dsl::Expr::Kind::kConst: return dsl::constant(e->value * f);
    case dsl::Expr::Kind::kOp: {
      std::vector<dsl::ExprPtr> kids;
      for (const auto& c : e->children) kids.push_back(scale_constants(c, f));
      return dsl::node(e->op, std::move(kids));
    }
    default: return e;
  }
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  bench::banner("Figure 3 — metric tolerance to constant error (BBR traces)");

  // Clean environments only: Figure 3 isolates *constant error* in the
  // handlers, so the traces themselves must show undisturbed steady-state
  // BBR pulses (random loss would conflate trace noise with handler error).
  auto envs = net::default_environments(3, /*seed=*/404);
  for (auto& e : envs) e.duration_s = bench::full_scale() ? 30.0 : 15.0;
  auto traces = net::collect_traces("bbr", envs);
  // One long steady-state segment per environment: where BBR's pulse
  // structure is visible (short loss-recovery fragments carry no signal).
  auto segs = bench::longest_segments(traces);
  std::printf("segments: %zu\n\n", segs.size());

  const std::vector<std::string> experts = {"bbr", "cubic", "reno", "vegas"};
  const int kSteps = 21;

  int dtw_cells = 0, euclid_cells = 0;
  for (auto metric : {distance::Metric::kDtw, distance::Metric::kEuclidean,
                      distance::Metric::kManhattan, distance::Metric::kFrechet}) {
    std::printf("%-11s ", distance::metric_name(metric));
    int correct_cells = 0;
    std::string strip;
    for (int i = 0; i < kSteps; ++i) {
      // error factor log-spaced in [0.1, 10]
      const double f = std::pow(10.0, -1.0 + 2.0 * i / (kSteps - 1));
      double best = 1e300;
      std::string best_cca;
      for (const auto& name : experts) {
        auto h = scale_constants(dsl::known_handlers(name).fine_tuned, f);
        const double d = bench::handler_distance(*h, segs, metric);
        if (d < best) {
          best = d;
          best_cca = name;
        }
      }
      const bool ok = best_cca == "bbr";
      correct_cells += ok;
      strip += ok ? '#' : '.';
    }
    if (metric == distance::Metric::kDtw) dtw_cells = correct_cells;
    if (metric == distance::Metric::kEuclidean) euclid_cells = correct_cells;
    std::printf("|%s|  correct %2d/%d error steps\n", strip.c_str(), correct_cells, kSteps);
  }
  std::printf("\nDTW correct on %d steps vs Euclidean's %d — the alignment-based metric\n"
              "tolerates constant error the point-wise metrics cannot (§4.3).\n",
              dtw_cells, euclid_cells);
  std::printf("\n('#' = BBR's handler still closest at that error factor; '.' = another\n"
              " CCA's handler won — the red-shaded region of Figure 3. Factors are\n"
              " log-spaced 0.1x..10x left to right; DTW should have the widest '#' span.)\n");
  return 0;
}
