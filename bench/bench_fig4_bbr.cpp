// Figure 4: the BBR case study (§5.2). Compare the paper's synthesized BBR
// handler (modulo-on-CWND pulses) against the fine-tuned handler
// (rtts-since-loss modulo pulses) on a set of BBR traces. The headline
// observation: neither dominates — because DTW disregards temporal shifts,
// the "random spikes" handler wins on some traces (Fig. 4b) while the
// aligned-pulse handler wins on others (Fig. 4a).
#include "bench_common.hpp"

using namespace abg;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  bench::banner("Figure 4 — BBR: synthesized vs fine-tuned handler, per trace");

  const auto& known = dsl::known_handlers("bbr");
  std::printf("synthesized: %s\n", dsl::to_string(*known.expected_synthesized).c_str());
  std::printf("fine-tuned : %s\n\n", dsl::to_string(*known.fine_tuned).c_str());

  std::printf("%-34s | %10s | %10s | %s\n", "trace segment", "synth DTW", "tuned DTW",
              "winner");
  bench::rule(' ', 0);
  bench::rule();

  // A grid of distinct conditions, including lossy paths: random losses
  // reset rtts-since-loss at unpredictable times, which is exactly what
  // derails the fine-tuned handler's aligned pulses on some traces.
  std::vector<trace::Environment> envs;
  std::uint64_t seed = 404;
  for (double rtt_ms : {15.0, 45.0, 90.0}) {
    for (double loss : {0.0, 0.002, 0.005}) {
      trace::Environment env;
      env.bandwidth_bps = 10e6;
      env.rtt_s = rtt_ms / 1e3;
      env.random_loss = loss;
      env.duration_s = bench::full_scale() ? 30.0 : 15.0;
      env.seed = seed++;
      envs.push_back(env);
    }
  }
  int synth_wins = 0, tuned_wins = 0;
  auto traces = net::collect_traces("bbr", envs);
  for (const auto& seg : bench::longest_segments(traces)) {
    if (seg.samples.size() < 60) continue;
    const double ds = bench::handler_distance(*known.expected_synthesized, {seg});
    const double df = bench::handler_distance(*known.fine_tuned, {seg});
    char label[64];
    std::snprintf(label, sizeof(label), "%s (%zu acks)", seg.env.label().c_str(),
                  seg.samples.size());
    (ds < df ? synth_wins : tuned_wins)++;
    std::printf("%-34.34s | %10.2f | %10.2f | %s\n", label, ds, df,
                ds < df ? "synthesized" : "fine-tuned");
  }
  bench::rule();
  std::printf("synthesized wins %d traces, fine-tuned wins %d — as in Fig. 4, the DTW\n"
              "metric lets the unaligned-pulse handler beat the aligned one on some traces.\n",
              synth_wins, tuned_wins);
  return 0;
}
