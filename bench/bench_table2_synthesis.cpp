// Table 2: for every CCA, run the Abagnale pipeline over its traces and
// print the synthesized cwnd-ack handler with its summed DTW distance,
// alongside the domain expert's fine-tuned handler and its distance on the
// same segments. Distances are comparable within a row only (§5.1).
#include "bench_common.hpp"

#include "util/stopwatch.hpp"

using namespace abg;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  bench::banner("Table 2 — synthesized vs fine-tuned cwnd-ack handlers");
  std::printf("%-10s | %-52s %9s | %-38s %9s\n", "CCA", "synthesized handler", "DTW",
              "fine-tuned handler", "DTW");
  bench::rule();

  const double per_cca_timeout = bench::full_scale() ? 3600.0 : 40.0;
  std::vector<std::string> rows = cca::kernel_cca_names();
  for (const auto& s : cca::student_cca_names()) rows.push_back(s);

  for (const auto& name : rows) {
    if (!bench::row_selected(name)) continue;
    const auto& known = dsl::known_handlers(name);
    if (!known.expected_synthesized && !known.fine_tuned) {
      // CDG (non-determinism) and HighSpeed (out-of-DSL log ops) are not run
      // through the synthesizer (§5.5); BIC runs but its handler is too deep.
      if (name == "cdg" || name == "highspeed") {
        std::printf("%-10s | %-52s %9s | %-38s %9s\n", name.c_str(),
                    "(not run: out of DSL scope, see §5.5)", "-", "-", "-");
        continue;
      }
    }
    auto traces = bench::collect(name, /*seed=*/101);
    auto segs = bench::segments_for(traces);
    if (segs.empty()) {
      std::printf("%-10s | %-52s %9s | %-38s %9s\n", name.c_str(), "(no segments)", "-", "-",
                  "-");
      continue;
    }

    auto opts = bench::synth_opts(per_cca_timeout);
    if (name == "cubic") opts.unit_check = false;  // §5.5: cube-root units
    core::PipelineOptions popts;
    popts.synth = opts;
    popts.dsl_override = known.dsl_hint;
    core::Abagnale pipeline(popts);
    auto result = pipeline.run(traces);

    const std::string synth_str =
        result.found() ? dsl::to_string(*result.synthesis.best.handler) : "<none>";
    const double synth_d =
        result.found() ? bench::handler_distance(*result.synthesis.best.handler, segs) : -1;
    std::string ft_str = "-";
    double ft_d = -1;
    if (known.fine_tuned) {
      ft_str = dsl::to_string(*known.fine_tuned);
      ft_d = bench::handler_distance(*known.fine_tuned, segs);
    }
    std::printf("%-10s | %-52.52s %9.2f | %-38.38s %9.2f\n", name.c_str(), synth_str.c_str(),
                synth_d, ft_str.c_str(), ft_d);
  }
  bench::rule();
  std::printf("Distances are sums of per-segment DTW over each CCA's own segment pool;\n"
              "compare within a row, not across rows (§5.1).\n");
  return 0;
}
