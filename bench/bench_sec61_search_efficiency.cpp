// §6.1: search-efficiency accounting for Reno, plus the §4.1 search-space
// size claims and the §4.4 bucket-discriminator ablation.
//   * raw sketch-space sizes by depth (the ~2-billion / 10^150 numbers),
//   * the enumeration-pruned space (type/unit/simplifiability filters),
//   * bucket counts for the operator-subset discriminator vs the
//     signal-subset alternative,
//   * a refinement-loop run with per-iteration handler counts and the
//     fraction of the viable space explored.
#include <cmath>

#include "bench_common.hpp"

#include "synth/buckets.hpp"
#include "synth/enumerator.hpp"

using namespace abg;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  bench::banner("Section 6.1 — search efficiency (Reno)");

  const auto reno = dsl::reno_dsl();

  auto print_count = [](double n) {
    if (std::isfinite(n)) std::printf("%.3g sketches\n", n);
    else std::printf("> 10^308 sketches (double overflow)\n");
  };
  std::printf("search-space sizes (raw typed trees, Reno-DSL, %zu elements):\n",
              reno.element_count());
  for (int d = 2; d <= 7; ++d) {
    std::printf("  depth %d: ", d);
    print_count(dsl::sketch_space_size(reno, d));
  }
  {
    dsl::Dsl full = dsl::vegas_dsl();
    full.ops.push_back(dsl::Op::kCube);
    full.ops.push_back(dsl::Op::kCbrt);
    std::printf("full Listing-1 DSL at depth 7: ");
    print_count(dsl::sketch_space_size(full, 7));
    std::printf("(paper: ~10^150 — both far beyond the atoms in the universe)\n\n");
  }

  // Bucket-discriminator ablation (§4.4): operator subsets vs signal subsets.
  const auto op_buckets = synth::make_buckets(reno);
  const double signal_buckets = std::pow(2.0, static_cast<double>(reno.signals.size() + 1));
  std::printf("bucket discriminators:\n");
  std::printf("  operator-subset (chosen): %zu feasible buckets\n", op_buckets.size());
  std::printf("  signal-subset (option 3): %.0f buckets (no feasibility pruning applies)\n\n",
              signal_buckets);

  // Enumeration pruning at the bench's working depth.
  const int depth = bench::full_scale() ? 4 : 3;
  const int nodes = bench::full_scale() ? 15 : 7;
  synth::EnumeratorOptions eo;
  eo.max_depth = depth;
  eo.max_nodes = nodes;
  eo.max_holes = 3;
  const std::size_t cap = bench::full_scale() ? 20000 : 3000;
  synth::SketchEnumerator en(reno, eo);
  std::size_t viable = 0;
  while (viable < cap && en.next()) ++viable;
  std::printf("viable space at depth %d (type+unit+non-simplifiable): %zu%s sketches\n",
              depth, viable, en.exhausted() ? "" : "+ (capped)");
  std::printf("  (raw space at this depth: %.3g; SMT models decoded: %zu)\n\n",
              dsl::sketch_space_size(reno, depth), en.models_enumerated());

  // Refinement-loop accounting.
  auto traces = bench::collect("reno", /*seed=*/101);
  auto segs = bench::segments_for(traces);
  auto opts = bench::synth_opts(bench::full_scale() ? 3600.0 : 90.0);
  opts.max_depth = depth;
  opts.max_nodes = nodes;
  auto result = synth::synthesize(reno, segs, opts);

  std::printf("refinement loop: %zu initial buckets, %zu iterations, %.1f s\n",
              result.initial_buckets, result.iterations.size(), result.seconds);
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const auto& it = result.iterations[i];
    std::size_t handlers = 0, retained = 0;
    for (const auto& b : it.buckets) {
      handlers += b.handlers_scored;
      retained += b.retained;
    }
    std::printf("  iter %zu: N=%d, %zu buckets scored, %zu retained, %zu segments, "
                "%zu handlers scored so far, %.1f s\n",
                i + 1, it.n_target, it.buckets.size(), retained, it.segments_used, handlers,
                it.seconds);
  }
  std::printf("total: %zu sketches enumerated, %zu handlers scored\n", result.total_sketches,
              result.total_handlers_scored);
  if (viable > 0) {
    std::printf("fraction of viable sketch space explored: %.0f%%  (paper: ~1/3)\n",
                100.0 * static_cast<double>(result.total_sketches) /
                    static_cast<double>(viable));
  }
  std::printf("returned: %s  (distance %.3f)\n",
              result.best.valid() ? dsl::to_string(*result.best.handler).c_str() : "<none>",
              result.best.distance);
  return 0;
}
