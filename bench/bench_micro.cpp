// Micro-benchmarks (google-benchmark) for the pipeline's hot paths: distance
// kernels, handler evaluation/replay, sketch enumeration, and the simulator.
// These quantify the §4.3 trade-off (DTW vs Euclidean runtime) and the §4.4
// claim that small per-bucket solver queries enumerate faster than one big
// whole-space query.
#include <benchmark/benchmark.h>

#include "distance/distance.hpp"
#include "dsl/bytecode.hpp"
#include "dsl/eval.hpp"
#include "dsl/known_handlers.hpp"
#include "dsl/simplify.hpp"
#include "dsl/units.hpp"
#include "net/simulator.hpp"
#include "obs/report.hpp"
#include "synth/batch_eval.hpp"
#include "synth/enumerator.hpp"
#include "synth/eval_cache.hpp"
#include "synth/replay.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace abg;

std::vector<double> noisy_saw(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>(i % 200) + rng.uniform(-3, 3);
  }
  return v;
}

void BM_Dtw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = noisy_saw(n, 1), b = noisy_saw(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::dtw(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dtw)->Range(64, 1024)->Complexity(benchmark::oNSquared);

// The same DP with the kernel pinned per arg (0=scalar, 1=sse2, 2=avx2), so
// the scalar-vs-SIMD speedup table falls straight out of one bench run.
// Tiers the host cannot execute are skipped, not silently downgraded.
void BM_DtwKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto simd = static_cast<distance::Simd>(state.range(1));
  if (!distance::simd_available(simd)) {
    state.SkipWithError("kernel not available on this host");
    return;
  }
  auto a = noisy_saw(n, 1), b = noisy_saw(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::dtw(a, b, 0.0, distance::kNoAbandon, simd));
  }
  state.SetLabel(distance::simd_name(simd));
}
BENCHMARK(BM_DtwKernel)->ArgsProduct({{256, 1024}, {0, 1, 2}});

void BM_DtwBanded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = noisy_saw(n, 1), b = noisy_saw(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::dtw(a, b, 0.1));
  }
}
BENCHMARK(BM_DtwBanded)->Range(64, 1024);

// Early-abandoning DTW against a hopeless pair (the refinement loop's common
// case: a candidate far worse than the bucket best). The bound is 10% of the
// true distance, so the per-row check fires within a few rows; compare with
// BM_Dtw at the same size for the pruned-work ratio.
void BM_DtwEarlyAbandon(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = noisy_saw(n, 1), b = noisy_saw(n, 2);
  for (auto& x : b) x += 150.0;
  const double exact = distance::dtw(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::dtw(a, b, 0.0, exact * 0.1));
  }
}
BENCHMARK(BM_DtwEarlyAbandon)->Range(64, 1024);

// The memo-cache probe on the synthesis hot path: canonicalize + hash +
// sharded lookup. Compare with BM_SegmentDistance to see what a hit saves.
void BM_EvalCacheHit(benchmark::State& state) {
  synth::EvalCache cache;
  const auto handler = dsl::known_handlers("vegas").fine_tuned;
  const auto canon = dsl::canonicalize(handler);
  cache.insert(42, dsl::hash_expr(*canon), canon, 1.25);
  for (auto _ : state) {
    const auto c = dsl::canonicalize(handler);
    benchmark::DoNotOptimize(cache.lookup(42, dsl::hash_expr(*c), *c));
  }
}
BENCHMARK(BM_EvalCacheHit);

void BM_Euclidean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = noisy_saw(n, 1), b = noisy_saw(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::euclidean(a, b));
  }
}
BENCHMARK(BM_Euclidean)->Range(64, 1024);

void BM_Frechet(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = noisy_saw(n, 1), b = noisy_saw(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::frechet(a, b));
  }
}
BENCHMARK(BM_Frechet)->Range(64, 512);

void BM_EvalHandler(benchmark::State& state) {
  const auto& h = *dsl::known_handlers("vegas").fine_tuned;
  cca::Signals sig;
  sig.mss = 1448;
  sig.cwnd = 50 * 1448;
  sig.acked_bytes = 1448;
  sig.rtt = 0.06;
  sig.min_rtt = 0.05;
  sig.max_rtt = 0.08;
  sig.ack_rate = 1e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::eval(h, sig));
  }
}
BENCHMARK(BM_EvalHandler);

void BM_Replay(benchmark::State& state) {
  trace::Environment env;
  env.duration_s = 10.0;
  auto t = net::run_connection("reno", env);
  auto segs = trace::segment_all({t}, 20);
  const auto& h = *dsl::known_handlers("reno").fine_tuned;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::replay(h, segs.front()));
  }
  state.counters["acks"] = static_cast<double>(segs.front().samples.size());
}
BENCHMARK(BM_Replay);

// Batched bytecode replay vs. the scalar path it replaces: one compiled
// sketch, kBatchLanes hole-assignments, one segment. BM_ReplayLanesScalar
// does the same work the pre-batching loop did (fill_holes + tree-walk replay
// per candidate); the ratio is the per-candidate win the refinement loop sees.
struct ReplayBatchFixture {
  dsl::ExprPtr sketch;
  dsl::Program prog;
  std::vector<std::vector<double>> assigns;
  std::vector<const std::vector<double>*> lanes;
  trace::Segment segment;

  ReplayBatchFixture() {
    trace::Environment env;
    env.duration_s = 10.0;
    auto t = net::run_connection("reno", env);
    segment = std::move(trace::segment_all({t}, 20).front());
    sketch = dsl::to_sketch(dsl::known_handlers("reno").fine_tuned);
    prog = dsl::compile(*sketch);
    util::Rng rng(7);
    const std::size_t holes = dsl::hole_ids(*sketch).size();
    for (std::size_t lane = 0; lane < dsl::kBatchLanes; ++lane) {
      std::vector<double> a(holes);
      for (auto& v : a) v = rng.uniform(0.1, 4.0);
      assigns.push_back(std::move(a));
    }
    for (const auto& a : assigns) lanes.push_back(&a);
  }
};

void BM_ReplayBatch(benchmark::State& state) {
  static const ReplayBatchFixture fx;
  std::vector<std::vector<double>> out;
  for (auto _ : state) {
    synth::replay_batch(fx.prog, fx.lanes, fx.segment, {}, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dsl::kBatchLanes));
}
BENCHMARK(BM_ReplayBatch);

void BM_ReplayLanesScalar(benchmark::State& state) {
  static const ReplayBatchFixture fx;
  for (auto _ : state) {
    for (const auto& a : fx.assigns) {
      const auto handler = dsl::fill_holes(fx.sketch, a);
      benchmark::DoNotOptimize(synth::replay(*handler, fx.segment));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dsl::kBatchLanes));
}
BENCHMARK(BM_ReplayLanesScalar);

void BM_SegmentDistance(benchmark::State& state) {
  trace::Environment env;
  env.duration_s = 10.0;
  auto t = net::run_connection("reno", env);
  auto segs = trace::segment_all({t}, 20);
  const auto& h = *dsl::known_handlers("reno").fine_tuned;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth::segment_distance(h, segs.front(), distance::Metric::kDtw));
  }
}
BENCHMARK(BM_SegmentDistance);

void BM_Simulator(benchmark::State& state) {
  trace::Environment env;
  env.duration_s = 5.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    env.seed = seed++;
    auto t = net::run_connection("reno", env);
    benchmark::DoNotOptimize(t.samples.size());
    state.counters["acks/s"] = benchmark::Counter(static_cast<double>(t.samples.size()),
                                                  benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_Simulator)->Unit(benchmark::kMillisecond);

void BM_UnitCheck(benchmark::State& state) {
  auto sketch = dsl::to_sketch(dsl::known_handlers("vegas").fine_tuned);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::unit_check(*sketch));
  }
}
BENCHMARK(BM_UnitCheck);

// Enumeration throughput: whole-space vs a single bucket (the §4.4 argument
// for bucketized solvers).
void BM_EnumerateWholeSpace(benchmark::State& state) {
  for (auto _ : state) {
    synth::EnumeratorOptions o;
    o.max_depth = 3;
    o.max_nodes = 5;
    o.max_holes = 2;
    auto v = synth::enumerate_all(dsl::reno_dsl(), o, 64);
    benchmark::DoNotOptimize(v.size());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EnumerateWholeSpace)->Unit(benchmark::kMillisecond);

void BM_EnumerateOneBucket(benchmark::State& state) {
  for (auto _ : state) {
    synth::EnumeratorOptions o;
    o.max_depth = 3;
    o.max_nodes = 5;
    o.max_holes = 2;
    o.bucket = std::vector<dsl::Op>{dsl::Op::kAdd, dsl::Op::kMul};
    auto v = synth::enumerate_all(dsl::reno_dsl(), o, 64);
    benchmark::DoNotOptimize(v.size());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EnumerateOneBucket)->Unit(benchmark::kMillisecond);

// Dispatch overhead of the templated ThreadPool::parallel_for. The body is a
// single multiply, so the timing is dominated by task fan-out/join; the
// regression guarded here is the old `const std::function&` signature, which
// added a type-erased indirect call (and a heap-allocated wrapper) on every
// index of every parallel loop in the refinement hot path.
void BM_ParallelForDispatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool(4);
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    pool.parallel_for(n, [&out](std::size_t i) { out[i] = i * 2654435761ull; });
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelForDispatch)->Range(1, 4096);

}  // namespace

// Same contract as the table/figure benches: leave an obs run report next to
// the timings so CI can archive counter context (DTW evals, cache hits,
// early abandons) alongside the google-benchmark JSON.
int main(int argc, char** argv) {
  abg::obs::write_metrics_json_at_exit("bench_micro.metrics.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
